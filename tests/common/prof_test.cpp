#include "common/prof.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace simra::prof {
namespace {

KernelStats find(const std::string& name) {
  for (const KernelStats& k : snapshot())
    if (k.name == name) return k;
  return {};
}

TEST(Prof, GetReturnsSameCounterPerName) {
  Counter& a = Counter::get("prof_test/same");
  Counter& b = Counter::get("prof_test/same");
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &Counter::get("prof_test/other"));
}

TEST(Prof, ScopeAccumulatesCallsAndTime) {
  Counter::get("prof_test/scoped").reset();
  for (int i = 0; i < 3; ++i) {
    SIMRA_PROF_SCOPE("prof_test/scoped");
  }
  const KernelStats stats = find("prof_test/scoped");
  EXPECT_EQ(stats.calls, 3u);
  EXPECT_GE(stats.seconds, 0.0);
}

TEST(Prof, MicrosPerCallHandlesZeroCalls) {
  KernelStats stats;
  EXPECT_DOUBLE_EQ(stats.micros_per_call(), 0.0);
  stats.calls = 4;
  stats.seconds = 2e-6;
  EXPECT_DOUBLE_EQ(stats.micros_per_call(), 0.5);
}

TEST(Prof, ConcurrentScopesLoseNoCalls) {
  Counter::get("prof_test/threads").reset();
  constexpr int kThreads = 4;
  constexpr int kIters = 1000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([] {
      for (int i = 0; i < kIters; ++i) {
        SIMRA_PROF_SCOPE("prof_test/threads");
      }
    });
  for (auto& w : workers) w.join();
  EXPECT_EQ(find("prof_test/threads").calls,
            static_cast<std::uint64_t>(kThreads) * kIters);
}

}  // namespace
}  // namespace simra::prof
