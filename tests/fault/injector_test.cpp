#include "fault/injector.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/bitvec.hpp"
#include "fault/spec.hpp"

namespace simra::fault {
namespace {

constexpr std::uint64_t kSeed = 0xFA11;

bool same_decision(const TransportDecision& a, const TransportDecision& b) {
  return a.deliver == b.deliver && a.duplicate == b.duplicate &&
         a.jitter_slots == b.jitter_slots && a.flip_pin == b.flip_pin;
}

FaultSpec transport_spec() {
  return FaultSpec::parse(
      "transport.bitflip=0.2,transport.drop=0.1,transport.dup=0.1,"
      "transport.jitter=0.3");
}

TEST(ChipInjector, SameKeyReproducesTheTransportStream) {
  ChipInjector a(transport_spec(), kSeed, 1, 2, 0);
  ChipInjector b(transport_spec(), kSeed, 1, 2, 0);
  for (int i = 0; i < 500; ++i) {
    const TransportDecision da = a.next_transport(27);
    const TransportDecision db = b.next_transport(27);
    EXPECT_TRUE(same_decision(da, db)) << "draw " << i;
  }
  EXPECT_EQ(a.counters().transport_total(), b.counters().transport_total());
  EXPECT_GT(a.counters().transport_total(), 0u);
}

TEST(ChipInjector, DistinctCoordinatesGetDistinctStreams) {
  ChipInjector base(transport_spec(), kSeed, 1, 2, 0);
  ChipInjector other_chip(transport_spec(), kSeed, 1, 3, 0);
  ChipInjector other_attempt(transport_spec(), kSeed, 1, 2, 1);
  int differs_chip = 0, differs_attempt = 0;
  for (int i = 0; i < 500; ++i) {
    const TransportDecision d = base.next_transport(27);
    if (!same_decision(d, other_chip.next_transport(27))) ++differs_chip;
    if (!same_decision(d, other_attempt.next_transport(27)))
      ++differs_attempt;
  }
  EXPECT_GT(differs_chip, 0);
  EXPECT_GT(differs_attempt, 0);
}

TEST(ChipInjector, ZeroRatesProduceOnlyCleanDecisions) {
  ChipInjector inj(FaultSpec{}, kSeed, 0, 0, 0);
  for (int i = 0; i < 100; ++i)
    EXPECT_TRUE(inj.next_transport(27).clean());
  EXPECT_EQ(inj.counters().total(), 0u);
}

TEST(ChipInjector, FlipPinStaysInsideTheCommandWord) {
  ChipInjector inj(FaultSpec::parse("transport.bitflip=1"), kSeed, 0, 0, 0);
  for (int i = 0; i < 200; ++i) {
    const TransportDecision d = inj.next_transport(27);
    ASSERT_GE(d.flip_pin, 0);
    ASSERT_LT(d.flip_pin, 27);
  }
  EXPECT_EQ(inj.counters().transport_bitflips, 200u);
}

TEST(ChipInjector, StuckMaskIsAPersistentChipProperty) {
  const FaultSpec spec = FaultSpec::parse("chip.stuck=0.05");
  // Different attempts, different query order: the overlay must agree —
  // a weak cell belongs to the chip, not to the retry.
  ChipInjector first(spec, kSeed, 4, 1, 0);
  ChipInjector second(spec, kSeed, 4, 1, 3);
  const std::size_t columns = 1024;
  const StuckMask* a0 = first.stuck_mask(0, 10, columns);
  const StuckMask* a1 = first.stuck_mask(0, 11, columns);
  const StuckMask* b1 = second.stuck_mask(0, 11, columns);
  const StuckMask* b0 = second.stuck_mask(0, 10, columns);
  ASSERT_NE(a0, nullptr);
  ASSERT_NE(b0, nullptr);
  EXPECT_EQ(a0->mask, b0->mask);
  EXPECT_EQ(a0->value, b0->value);
  EXPECT_EQ(a1->mask, b1->mask);
  EXPECT_EQ(a1->value, b1->value);
  // Distinct rows draw distinct overlays (statistically certain at 5%).
  EXPECT_NE(a0->mask, a1->mask);
  // Repeat queries hit the cache: same object back.
  EXPECT_EQ(first.stuck_mask(0, 10, columns), a0);
  // ~5% of 1024 cells are weak; allow a generous band.
  const std::size_t weak = a0->mask.popcount();
  EXPECT_GT(weak, 10u);
  EXPECT_LT(weak, 150u);
}

TEST(ChipInjector, StuckMaskIsNullWhenRateIsZero) {
  ChipInjector inj(FaultSpec::parse("chip.retention=0.5"), kSeed, 0, 0, 0);
  EXPECT_TRUE(inj.any_chip_faults());
  EXPECT_EQ(inj.stuck_mask(0, 0, 256), nullptr);
}

TEST(ChipInjector, RetentionRateOneFlipsEveryCell) {
  ChipInjector inj(FaultSpec::parse("chip.retention=1"), kSeed, 0, 0, 0);
  BitVec cells(256);
  inj.retention_flips(cells);
  EXPECT_EQ(cells.popcount(), 256u);
  EXPECT_EQ(inj.counters().chip_retention_flips, 256u);
}

TEST(ChipInjector, RetentionRateZeroTouchesNothing) {
  ChipInjector inj(FaultSpec::parse("chip.stuck=0.1"), kSeed, 0, 0, 0);
  BitVec cells(256);
  cells.fill(true);
  inj.retention_flips(cells);
  EXPECT_EQ(cells.popcount(), 256u);
  EXPECT_EQ(inj.counters().chip_retention_flips, 0u);
}

TEST(ChipInjector, DisturbanceScalesWithDrivenRowCount) {
  // Per-neighbour-cell flip rate = chip.disturb x driven rows, capped at
  // 1: with 0.5 x 2 the victim flips entirely.
  ChipInjector inj(FaultSpec::parse("chip.disturb=0.5"), kSeed, 0, 0, 0);
  BitVec victim(128);
  inj.disturb_flips(2, victim);
  EXPECT_EQ(victim.popcount(), 128u);
  EXPECT_EQ(inj.counters().chip_disturb_flips, 128u);

  ChipInjector weak(FaultSpec::parse("chip.disturb=0.01"), kSeed, 0, 0, 0);
  BitVec single(4096), many(4096);
  weak.disturb_flips(1, single);
  const std::uint64_t after_single = weak.counters().chip_disturb_flips;
  weak.disturb_flips(32, many);
  EXPECT_GT(weak.counters().chip_disturb_flips - after_single, after_single);
}

TEST(ChipInjector, CrashListTasksCrashOnEveryAttempt) {
  const FaultSpec spec = FaultSpec::parse("task.crash_tasks=3");
  for (unsigned attempt = 0; attempt < 3; ++attempt) {
    ChipInjector inj(spec, kSeed, 0, 3, attempt);
    EXPECT_TRUE(inj.task_crash(3)) << "attempt " << attempt;
    EXPECT_EQ(inj.counters().task_crashes, 1u);
  }
  ChipInjector inj(spec, kSeed, 0, 2, 0);
  EXPECT_FALSE(inj.task_crash(2));
}

TEST(ChipInjector, TraceIsRecordedOnlyWhenEnabled) {
  ChipInjector quiet(FaultSpec::parse("transport.drop=1"), kSeed, 0, 0, 0);
  (void)quiet.next_transport(27);
  EXPECT_TRUE(quiet.trace().empty());
  EXPECT_EQ(quiet.counters().transport_drops, 1u);

  ChipInjector loud(FaultSpec::parse("transport.drop=1,trace=1"), kSeed, 0,
                    0, 0);
  (void)loud.next_transport(27);
  ASSERT_FALSE(loud.trace().empty());
}

TEST(ChipInjector, GarbageWordsAreDeterministic) {
  ChipInjector a(transport_spec(), kSeed, 2, 2, 1);
  ChipInjector b(transport_spec(), kSeed, 2, 2, 1);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.garbage_word(), b.garbage_word());
}

TEST(FaultCounters, AccumulateAcrossInjectors) {
  FaultCounters total;
  ChipInjector a(FaultSpec::parse("transport.drop=1"), kSeed, 0, 0, 0);
  ChipInjector b(FaultSpec::parse("chip.retention=1"), kSeed, 0, 1, 0);
  (void)a.next_transport(27);
  BitVec cells(64);
  b.retention_flips(cells);
  total += a.counters();
  total += b.counters();
  EXPECT_EQ(total.transport_drops, 1u);
  EXPECT_EQ(total.chip_retention_flips, 64u);
  EXPECT_EQ(total.total(), 65u);
}

}  // namespace
}  // namespace simra::fault
