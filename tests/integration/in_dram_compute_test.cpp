// End-to-end integration: synthesize arithmetic as majority networks and
// execute them *through the DRAM model* via PUD operations — the complete
// §8.1 computation path with real (imperfect) in-DRAM majority gates.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dram/chip.hpp"
#include "majsynth/dram_executor.hpp"
#include "majsynth/synth.hpp"
#include "pud/engine.hpp"

namespace simra::majsynth {
namespace {

class InDramComputeTest : public ::testing::Test {
 protected:
  dram::Chip chip_{dram::VendorProfile::hynix_m(), 81};
  pud::Engine engine_{&chip_};
  Rng rng_{82};
  DramExecutor executor_{&engine_, 0, 1, &rng_};

  std::size_t columns() const { return chip_.profile().geometry.columns; }

  /// Packs per-column element values into bit-sliced input rows.
  std::vector<BitVec> pack(const std::vector<std::uint32_t>& values,
                           unsigned bits) {
    std::vector<BitVec> rows(bits, BitVec(columns()));
    for (std::size_t c = 0; c < columns(); ++c) {
      const std::uint32_t v = values[c % values.size()];
      for (unsigned bit = 0; bit < bits; ++bit)
        rows[bit].set(c, (v >> bit) & 1u);
    }
    return rows;
  }
};

TEST_F(InDramComputeTest, EightBitAdditionInDram) {
  constexpr unsigned kBits = 8;
  const Network net = synth::adder_network(kBits, 5);

  std::vector<std::uint32_t> a_vals{17, 200, 3, 255, 96, 128, 77, 5};
  std::vector<std::uint32_t> b_vals{9, 55, 250, 1, 96, 127, 33, 250};
  auto inputs = pack(a_vals, kBits);
  const auto b_rows = pack(b_vals, kBits);
  inputs.insert(inputs.end(), b_rows.begin(), b_rows.end());

  const auto outputs = executor_.run(net, inputs);
  ASSERT_EQ(outputs.size(), kBits + 1);

  // Count element-level results: with MAJ gates at ~99 % per-bit success,
  // the large majority of the 8192 parallel additions must be exact.
  std::size_t exact = 0;
  for (std::size_t c = 0; c < columns(); ++c) {
    std::uint32_t got = 0;
    for (unsigned bit = 0; bit < kBits + 1; ++bit)
      got |= (outputs[bit].get(c) ? 1u : 0u) << bit;
    const std::uint32_t expect =
        a_vals[c % a_vals.size()] + b_vals[c % b_vals.size()];
    if (got == expect) ++exact;
  }
  EXPECT_GT(static_cast<double>(exact) / static_cast<double>(columns()), 0.60);
  EXPECT_GT(executor_.stats().maj_ops, 0u);
  EXPECT_GT(executor_.stats().commands_ns, 0.0);
}

TEST_F(InDramComputeTest, AndReductionInDramIsNearPerfect) {
  std::vector<BitVec> inputs;
  Rng rng(5);
  for (int i = 0; i < 4; ++i) {
    BitVec row(columns());
    row.randomize(rng);
    inputs.push_back(std::move(row));
  }
  BitVec expected = inputs[0];
  for (int i = 1; i < 4; ++i) expected &= inputs[i];

  // MAJ3-only gates keep per-bit margins at the MAJ3@32 reliability.
  const auto out3 =
      executor_.run(synth::bitwise_and_network(4, 3), inputs);
  EXPECT_GT(out3[0].matches(expected), columns() * 95 / 100);

  // A single wide MAJ7 gate (AND4) sees bare majorities on nearly set
  // inputs: measurably more errors — the MAJ9-degradation effect Fig 16
  // reports, observed end-to-end.
  const auto out7 =
      executor_.run(synth::bitwise_and_network(4, 9), inputs);
  EXPECT_LT(out7[0].matches(expected), out3[0].matches(expected));
}

TEST_F(InDramComputeTest, ValidatesInputs) {
  const Network net = synth::bitwise_and_network(2, 3);
  EXPECT_THROW((void)executor_.run(net, {}), std::invalid_argument);
  std::vector<BitVec> short_rows(2, BitVec(16));
  EXPECT_THROW((void)executor_.run(net, short_rows), std::invalid_argument);
}

}  // namespace
}  // namespace simra::majsynth
