#include "casestudy/data_movement.hpp"

#include <gtest/gtest.h>

namespace simra::casestudy {
namespace {

TEST(DataMovement, PudWinsOnWideRows) {
  // The whole point of PUD (§1): avoiding the bus beats moving 8 KiB rows.
  const auto cmp = compare_bulk_and(dram::VendorProfile::hynix_m(), 8);
  EXPECT_GT(cmp.speedup(), 2.0);
  EXPECT_GT(cmp.energy_reduction(), 1.0);
  EXPECT_EQ(cmp.pud_operations, 7u);  // AND-tree of 8 operands at fan-in 3.
}

TEST(DataMovement, CpuCostScalesWithOperands) {
  const auto small = compare_bulk_and(dram::VendorProfile::hynix_m(), 2);
  const auto large = compare_bulk_and(dram::VendorProfile::hynix_m(), 16);
  EXPECT_GT(large.cpu_time_ns, small.cpu_time_ns * 5.0);
  EXPECT_GT(large.pud_time_ns, small.pud_time_ns);
}

TEST(DataMovement, WiderRowsFavourPudMore) {
  // Micron x16 rows are 16 Kib: twice the bus traffic per row, same
  // constant-time in-DRAM operation.
  const auto x8 = compare_bulk_and(dram::VendorProfile::hynix_m(), 8);
  const auto x16 = compare_bulk_and(dram::VendorProfile::micron_e(), 8);
  EXPECT_GT(x16.speedup(), x8.speedup());
}

TEST(DataMovement, RejectsDegenerateInput) {
  EXPECT_THROW((void)compare_bulk_and(dram::VendorProfile::hynix_m(), 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace simra::casestudy
