#include "charz/figures.hpp"
#include "charz/runner.hpp"
#include "charz/series.hpp"
#include "common/rng.hpp"
#include "pud/success.hpp"

namespace simra::charz {

namespace {

constexpr std::size_t kDestCounts[] = {1, 3, 7, 15, 31};

}  // namespace

FigureData fig10_mrc_timing(const Plan& plan) {
  const auto sweep = run_instances<SeriesAccumulator>(
      plan, [&plan](Instance& inst, SeriesAccumulator& out) {
        for (double t1 : {1.5, 6.0, 18.0, 36.0}) {
          for (double t2 : {1.5, 3.0}) {
            for (std::size_t dests : kDestCounts) {
              pud::MeasureConfig cfg;
              cfg.pattern = dram::DataPattern::kRandom;
              cfg.trials = plan.trials;
              cfg.timings = {Nanoseconds{t1}, Nanoseconds{t2}};
              for (std::size_t gi = 0; gi < plan.groups_per_size; ++gi) {
                const pud::RowGroup group = pud::sample_group(
                    inst.engine.layout(), dests + 1, inst.rng);
                out.add({format_ns(t1), format_ns(t2), std::to_string(dests)},
                        pud::measure_mrc(inst.engine, inst.bank, inst.subarray,
                                         group, cfg, inst.rng));
              }
            }
          }
        }
      });
  return finish_sweep(sweep, "Fig 10: Multi-RowCopy success rate vs APA timing",
                      {"t1", "t2", "dests"});
}

FigureData fig11_mrc_datapattern(const Plan& plan) {
  const std::vector<dram::DataPattern> patterns = {
      dram::DataPattern::kAllZeros, dram::DataPattern::kAllOnes,
      dram::DataPattern::kRandom};
  const auto sweep = run_instances<SeriesAccumulator>(
      plan, [&](Instance& inst, SeriesAccumulator& out) {
        for (dram::DataPattern pattern : patterns) {
          for (std::size_t dests : kDestCounts) {
            pud::MeasureConfig cfg;
            cfg.pattern = pattern;
            cfg.trials = plan.trials;
            cfg.timings = pud::ApaTimings::best_for_multi_row_copy();
            for (std::size_t gi = 0; gi < plan.groups_per_size; ++gi) {
              const pud::RowGroup group = pud::sample_group(
                  inst.engine.layout(), dests + 1, inst.rng);
              out.add({dram::to_string(pattern), std::to_string(dests)},
                      pud::measure_mrc(inst.engine, inst.bank, inst.subarray,
                                       group, cfg, inst.rng));
            }
          }
        }
      });
  return finish_sweep(sweep,
                      "Fig 11: Multi-RowCopy success rate vs data pattern",
                      {"pattern", "dests"});
}

namespace {

FigureData mrc_environment_sweep(const Plan& plan, bool sweep_temperature) {
  const std::vector<double> temps = {50, 60, 70, 80, 90};
  const std::vector<double> vpps = {2.5, 2.4, 2.3, 2.2, 2.1};
  const std::vector<double>& points = sweep_temperature ? temps : vpps;

  const auto sweep = run_instances<SeriesAccumulator>(
      plan, [&](Instance& inst, SeriesAccumulator& out) {
        for (std::size_t dests : kDestCounts) {
          pud::MeasureConfig cfg;
          cfg.pattern = dram::DataPattern::kRandom;
          cfg.trials = plan.trials;
          cfg.timings = pud::ApaTimings::best_for_multi_row_copy();
          for (std::size_t gi = 0; gi < plan.groups_per_size; ++gi) {
            // Retest the same group at every operating point (see the MAJX
            // sweep for rationale).
            const pud::RowGroup group =
                pud::sample_group(inst.engine.layout(), dests + 1, inst.rng);
            for (double point : points) {
              auto& env = inst.engine.chip().env();
              if (sweep_temperature)
                env.temperature = Celsius{point};
              else
                env.vpp = Volts{point};
              out.add({format_ns(point), std::to_string(dests)},
                      pud::measure_mrc(inst.engine, inst.bank, inst.subarray,
                                       group, cfg, inst.rng));
            }
          }
        }
        inst.engine.chip().env() = dram::EnvironmentState{};
      });
  return finish_sweep(
      sweep,
      sweep_temperature ? "Fig 12a: Multi-RowCopy success rate vs temperature"
                        : "Fig 12b: Multi-RowCopy success rate vs VPP",
      {sweep_temperature ? "tempC" : "vpp", "dests"});
}

}  // namespace

FigureData fig12a_mrc_temperature(const Plan& plan) {
  return mrc_environment_sweep(plan, /*sweep_temperature=*/true);
}

FigureData fig12b_mrc_voltage(const Plan& plan) {
  return mrc_environment_sweep(plan, /*sweep_temperature=*/false);
}

}  // namespace simra::charz
