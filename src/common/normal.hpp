#pragma once

#include <cstdint>

namespace simra {

/// Inverse standard-normal CDF (Acklam's rational approximation, |err| <
/// 1.15e-9). Used to map hashed uniforms to normal deviates, by the
/// calibration tables, and by the counter-based noise sampler
/// (Rng::CounterStream). Lives in common so both the stateless samplers
/// and the dram variation fields share one definition — the dram layer
/// re-exports it (process_variation.hpp) for its historical call sites.
double inverse_normal_cdf(double p);

/// Standard normal CDF.
double normal_cdf(double z);

/// Maps a 64-bit hash to a uniform double in (0, 1): the 53 high bits,
/// offset by half a ulp so exact 0 never occurs. The shared hash-to-
/// uniform step of every hashed/counter-based sampler in the tree.
inline double uniform_from_hash(std::uint64_t h) noexcept {
  return (static_cast<double>(h >> 11) + 0.5) * 0x1.0p-53;
}

}  // namespace simra
