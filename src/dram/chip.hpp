#pragma once

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "dram/bank.hpp"
#include "dram/electrical.hpp"
#include "dram/predecoder.hpp"
#include "dram/process_variation.hpp"
#include "dram/types.hpp"
#include "dram/vendor.hpp"

namespace simra::dram {

/// One DDR4 DRAM chip: a set of banks behind a shared command interface,
/// with chip-wide environment state (temperature, VPP) and persistent
/// process variation derived from the chip's seed.
///
/// Commands carry explicit nanosecond timestamps; the host (bender) layer
/// is responsible for the 1.5 ns command-slot granularity of the testbed.
class Chip {
 public:
  /// `seed` determines the chip's process variation (its stable/unstable
  /// cell map); distinct seeds model distinct physical chips.
  explicit Chip(VendorProfile profile, std::uint64_t seed = 1);

  Chip(const Chip&) = delete;
  Chip& operator=(const Chip&) = delete;

  const VendorProfile& profile() const noexcept { return profile_; }
  const PredecoderLayout& layout() const noexcept { return layout_; }
  const ElectricalModel& electrical() const noexcept { return electrical_; }

  /// Attaches the chip-level shared deviate cache (non-owning; nullptr
  /// detaches); see ElectricalModel::share_deviates.
  void share_deviates(SharedDeviateCache* cache) noexcept {
    electrical_.share_deviates(cache);
  }
  std::uint64_t seed() const noexcept { return variation_.seed(); }

  std::size_t bank_count() const noexcept { return banks_.size(); }
  Bank& bank(BankId id);
  const Bank& bank(BankId id) const;

  EnvironmentState& env() noexcept { return env_; }
  const EnvironmentState& env() const noexcept { return env_; }
  Rng& rng() noexcept { return rng_; }
  /// The chip's counter-based frac-sense noise stream (keyed on the chip
  /// seed, independent of `rng()`'s draw sequence).
  Rng::CounterStream& noise_stream() noexcept { return noise_; }

  /// Attaches a chip-fault injector (non-owning; nullptr detaches) and
  /// propagates it to every bank. Without one, the command path runs the
  /// exact fault-free model.
  void install_faults(fault::ChipInjector* faults) noexcept;
  fault::ChipInjector* faults() const noexcept { return faults_; }

  /// Aggregated command statistics across all banks.
  CommandStats total_stats() const;

 private:
  VendorProfile profile_;
  PredecoderLayout layout_;
  VariationField variation_;
  ElectricalModel electrical_;
  EnvironmentState env_;
  Rng rng_;
  Rng::CounterStream noise_;
  fault::ChipInjector* faults_ = nullptr;
  std::vector<std::unique_ptr<Bank>> banks_;
};

}  // namespace simra::dram
