#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "bender/program.hpp"
#include "verify/dataflow.hpp"
#include "verify/rules.hpp"

namespace simra::verify {

/// SIMRA_OPT modes: off (default) — no whole-program passes; lint — run
/// the dataflow/reliability/occupancy passes and report, never transform;
/// on — lint plus the slot-compaction / dead-command-elimination
/// optimizer wherever the caller deems it safe.
enum class OptMode : std::uint8_t {
  kOff,
  kLint,
  kOn,
};

/// Parses a SIMRA_OPT value; unknown non-empty values map to kLint (fail
/// towards visibility, never towards transforming programs).
OptMode parse_opt_mode(std::string_view text);

/// The process-wide mode, read once from SIMRA_OPT and cached.
OptMode global_opt_mode();

/// Test hook: overrides (or with nullopt, restores) the global opt mode.
void set_global_opt_mode(std::optional<OptMode> mode);

struct OptStats {
  std::size_t removed_commands = 0;  ///< dead-command elimination.
  std::uint64_t extent_before = 0;
  std::uint64_t extent_after = 0;
  /// False when a rigid-constraint conflict made the compactor bail out
  /// and return the input schedule unchanged.
  bool compacted = false;
};

struct Optimized {
  bender::Program program;
  OptStats stats;
};

/// Slot compaction: re-packs the command sequence into the minimal slot
/// extent that the rule table allows, ASAP with per-command lower bounds.
/// Command *order* (hence the chip's RNG draw order) is preserved — only
/// slack shrinks — so compaction composes with fault injection.
///
/// Correctness envelope:
///  - gaps that originally satisfied a rule minimum keep satisfying it;
///  - gaps that originally violated one (the paper's intended-violation
///    regimes, where the sub-tRP / sub-4ns interval *is* the computation)
///    are preserved exactly (rigid constraints; conflicts bail out);
///  - head/tail margins keep every cross-program gap no worse than
///    min(original, rule minimum), and preserve sub-threshold
///    cross-program gaps exactly, so back-to-back programs on one chip
///    behave identically.
Optimized compact(const bender::Program& program, const RuleTable& table);

/// The minimal extent compact() would produce, without rebuilding — the
/// occupancy pass's critical-path figure. Returns the original extent
/// when the compactor bails out.
std::uint64_t compacted_extent_slots(const bender::Program& program,
                                     const RuleTable& table);

/// Dead-command elimination (dataflow-proved dead stores and redundant
/// PRE/ACT reopen pairs) followed by compaction. Removal changes the
/// chip's per-command RNG/fault draw sequence, so callers must only use
/// this on fault-free chips (see DataflowResult); compaction alone is
/// always safe.
Optimized optimize(const bender::Program& program, const ProgramContext& ctx);

}  // namespace simra::verify
