#include "serve/workload.hpp"

#include <sstream>
#include <stdexcept>

#include "common/rng.hpp"

namespace simra::serve {

std::string apply_mix(WorkloadSpec& spec, const std::string& mix) {
  if (!mix.empty()) {
    std::stringstream ss(mix);
    std::string entry;
    while (std::getline(ss, entry, ',')) {
      if (entry.empty()) continue;
      const std::size_t colon = entry.find(':');
      if (colon == std::string::npos)
        throw std::invalid_argument("mix entry needs op:weight — '" + entry +
                                    "'");
      const std::string op = entry.substr(0, colon);
      unsigned weight = 0;
      try {
        weight = static_cast<unsigned>(std::stoul(entry.substr(colon + 1)));
      } catch (const std::exception&) {
        throw std::invalid_argument("mix weight not a number — '" + entry +
                                    "'");
      }
      if (op == "rowclone") {
        spec.weight_rowclone = weight;
      } else if (op == "init") {
        spec.weight_init = weight;
      } else if (op == "copy") {
        spec.weight_copy = weight;
      } else if (op == "majx") {
        spec.weight_majx = weight;
      } else {
        throw std::invalid_argument("unknown mix op '" + op + "'");
      }
    }
  }
  if (spec.weight_rowclone + spec.weight_init + spec.weight_copy +
          spec.weight_majx ==
      0)
    throw std::invalid_argument("mix weights sum to zero");
  return mix_string(spec);
}

std::string mix_string(const WorkloadSpec& spec) {
  std::ostringstream os;
  os << "rowclone:" << spec.weight_rowclone << ",init:" << spec.weight_init
     << ",copy:" << spec.weight_copy << ",majx:" << spec.weight_majx;
  return os.str();
}

Request make_request(const WorkloadSpec& spec, std::uint64_t index) {
  Rng rng(hash_combine(hash_combine(spec.seed, 0x3e9dull), index));
  Request request;
  request.tenant = static_cast<std::uint32_t>(rng.below(spec.tenants));
  request.bank = static_cast<dram::BankId>(rng.below(spec.banks));
  request.sa = static_cast<dram::SubarrayId>(rng.below(spec.subarrays));

  const unsigned total = spec.weight_rowclone + spec.weight_init +
                         spec.weight_copy + spec.weight_majx;
  const auto draw = static_cast<unsigned>(rng.below(total));
  const auto random_row = [&] {
    BitVec row(spec.columns);
    row.randomize(rng);
    return row;
  };
  if (draw < spec.weight_rowclone) {
    request.op = OpKind::kRowClone;
    request.src = static_cast<dram::RowAddr>(rng.below(spec.rows));
    request.dst = static_cast<dram::RowAddr>(
        (request.src + 1 + rng.below(spec.rows - 1)) % spec.rows);
    if (spec.seed_sources) request.operands.push_back(random_row());
  } else if (draw < spec.weight_rowclone + spec.weight_init) {
    request.op = OpKind::kBulkInit;
    BitVec pattern(spec.columns);
    pattern.fill_byte(static_cast<std::uint8_t>(rng.below(256)));
    request.operands.push_back(std::move(pattern));
  } else if (draw <
             spec.weight_rowclone + spec.weight_init + spec.weight_copy) {
    request.op = OpKind::kMultiRowCopy;
    if (spec.seed_sources) request.operands.push_back(random_row());
  } else {
    request.op = OpKind::kMajx;
    for (unsigned i = 0; i < spec.majx_x; ++i)
      request.operands.push_back(random_row());
  }
  request.read_back = spec.read_back && request.op != OpKind::kMajx;
  if (spec.deadline_fraction > 0.0 && rng.chance(spec.deadline_fraction))
    request.deadline_ns = spec.deadline_slack_ns * (1.0 + rng.uniform());
  return request;
}

}  // namespace simra::serve
