// Reproduces Fig 15: circuit-level Monte-Carlo analysis of input
// replication — (a) bitline deviation before sensing and (b) MAJ3 success
// rate, vs process variation for N-row activation.
#include <iostream>

#include "common/env.hpp"
#include "common/table.hpp"
#include "spice/montecarlo.hpp"

int main() {
  using namespace simra;
  using namespace simra::spice;

  const std::size_t iterations = full_scale_run() ? 10000 : 1000;
  std::cout << "=== Fig 15: SPICE Monte-Carlo, MAJ3(1,1,0) with N-row "
               "activation ===\n";
  std::cout << "iterations per point: " << iterations
            << (full_scale_run() ? " (paper scale)" : " (quick; SIMRA_FULL=1 for 10^4)")
            << "\n\n";

  Table dev({"variation%", "N", "dev_min_mV", "dev_q1_mV", "dev_median_mV",
             "dev_q3_mV", "dev_max_mV"});
  Table success({"variation%", "N", "maj3_success%"});

  double dev4 = 0.0;
  double dev32 = 0.0;
  double s4_0 = 0.0, s4_40 = 0.0, s32_0 = 0.0, s32_40 = 0.0;

  for (double variation : {0.0, 0.1, 0.2, 0.3, 0.4}) {
    for (unsigned n : {1u, 4u, 8u, 16u, 32u}) {
      MonteCarloConfig cfg;
      cfg.n_rows = n;
      cfg.variation_fraction = variation;
      cfg.iterations = iterations;
      cfg.seed = 77 + static_cast<std::uint64_t>(variation * 100) + n;
      const MonteCarloResult r = run_maj3_monte_carlo(cfg);
      auto mv = [](double v) { return Table::num(v * 1000.0, 2); };
      dev.add_row({Table::num(variation * 100, 0), std::to_string(n),
                   mv(r.deviation.min), mv(r.deviation.q1),
                   mv(r.deviation.median), mv(r.deviation.q3),
                   mv(r.deviation.max)});
      if (n >= 3)
        success.add_row({Table::num(variation * 100, 0), std::to_string(n),
                         Table::num(r.success_rate * 100.0, 2)});
      if (variation == 0.2 && n == 4) dev4 = r.deviation.mean;
      if (variation == 0.2 && n == 32) dev32 = r.deviation.mean;
      if (variation == 0.0 && n == 4) s4_0 = r.success_rate;
      if (variation == 0.4 && n == 4) s4_40 = r.success_rate;
      if (variation == 0.0 && n == 32) s32_0 = r.success_rate;
      if (variation == 0.4 && n == 32) s32_40 = r.success_rate;
    }
  }

  std::cout << "Fig 15a: bitline deviation before sensing\n";
  dev.print(std::cout);
  std::cout << "\nFig 15b: MAJ3(1,1,0) success rate\n";
  success.print(std::cout);

  std::cout << "\nPaper reference points:\n";
  std::cout << "  32-row vs 4-row deviation: paper +159.05% — measured +"
            << Table::num((dev32 / dev4 - 1.0) * 100.0, 2) << "%\n";
  std::cout << "  4-row success 0%->40% variation: paper -46.58% — measured "
            << Table::num((s4_40 - s4_0) * 100.0, 2) << "%\n";
  std::cout << "  32-row success 0%->40% variation: paper -0.01% — measured "
            << Table::num((s32_40 - s32_0) * 100.0, 2) << "%\n";
  return 0;
}
