#include "dram/bank.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/rng.hpp"
#include "dram/timing.hpp"
#include "fault/injector.hpp"

namespace simra::dram {

namespace {
// Internal analog milestones; see ActivationMilestones. Kept here as the
// single source of truth for the bank's regime decisions.
constexpr double kSenseEnableNs = 4.0;      // ACT -> SA fires.
constexpr double kPrechargeSettleNs = 4.0;  // PRE -> wordline de-assert done.
}  // namespace

Bank::Bank(BankId id, const ChipContext& ctx) : id_(id), ctx_(ctx) {
  if (ctx_.profile == nullptr || ctx_.layout == nullptr ||
      ctx_.electrical == nullptr || ctx_.env == nullptr ||
      ctx_.rng == nullptr || ctx_.noise == nullptr)
    throw std::invalid_argument("bank requires a fully populated chip context");
}

SubarrayId Bank::subarray_of(RowAddr global_row) const {
  return static_cast<SubarrayId>(global_row / ctx_.layout->rows());
}

RowAddr Bank::local_of(RowAddr global_row) const {
  return static_cast<RowAddr>(global_row % ctx_.layout->rows());
}

RowAddr Bank::global_of(SubarrayId sa, RowAddr local) const {
  return static_cast<RowAddr>(sa) * static_cast<RowAddr>(ctx_.layout->rows()) + local;
}

Subarray& Bank::subarray(SubarrayId sa) {
  auto it = subarrays_.find(sa);
  if (it == subarrays_.end()) {
    it = subarrays_
             .emplace(sa, std::make_unique<Subarray>(ctx_.layout,
                                                     ctx_.profile->geometry.columns))
             .first;
  }
  return *it->second;
}

void Bank::check_time(double t_ns) {
  if (t_ns < t_last_cmd_)
    throw std::invalid_argument("command timestamps must be monotonic");
  t_last_cmd_ = t_ns;
}

BitlineContext Bank::bitline_ctx() const {
  BitlineContext ctx;
  ctx.bank = id_;
  ctx.subarray = open_sa_;
  ctx.group_key = group_key_of(open_local_rows_);
  ctx.columns = ctx_.profile->geometry.columns;
  return ctx;
}

void Bank::apply_cell_faults(Subarray& s, SubarrayId sa, RowAddr local) {
  fault::ChipInjector* inj = ctx_.faults;
  if (inj == nullptr || !inj->any_chip_faults()) return;
  BitVec& cells = s.row_data(local);
  inj->retention_flips(cells);
  if (const fault::StuckMask* sm =
          inj->stuck_mask(id_, global_of(sa, local), cells.size()))
    cells.assign_masked(sm->value, sm->mask);
}

void Bank::apply_apa_disturbance(Subarray& s) {
  fault::ChipInjector* inj = ctx_.faults;
  if (inj == nullptr || open_local_rows_.empty()) return;
  const auto [min_it, max_it] =
      std::minmax_element(open_local_rows_.begin(), open_local_rows_.end());
  const std::size_t driven = open_local_rows_.size();
  if (*min_it > 0) inj->disturb_flips(driven, s.row_data(*min_it - 1));
  if (const RowAddr above = *max_it + 1; above < s.rows())
    inj->disturb_flips(driven, s.row_data(above));
}

void Bank::open_single(RowAddr local, SubarrayId sa, double t_ns) {
  Subarray& s = subarray(sa);
  s.latches().clear();
  s.latches().latch(local);
  open_sa_ = sa;
  open_local_rows_ = {local};
  write_masks_.clear();
  differing_fields_ = 0;
  apa_ = ApaDecision{};
  if (s.row_state(local) == RowState::kFrac) {
    // Sensing a VDD/2 row: each SA resolves to its offset/bias side and
    // restores that value into the cells (the basis of Frac-less neutral
    // rows and of SiMRA-based TRNGs).
    BitlineContext bctx = bitline_ctx();
    row_buffer_ = ctx_.electrical->sense_frac_row(bctx, *ctx_.noise);
    s.row_data(local) = row_buffer_;
    s.set_row_state(local, RowState::kValid);
  } else {
    apply_cell_faults(s, sa, local);
    row_buffer_ = s.row_data(local);
  }
  phase_ = Phase::kOpen;
  t_first_act_ = t_ns;
  t_last_act_ = t_ns;
}

void Bank::finish_precharge() {
  const double t1 = t_pre_ - t_last_act_;
  Subarray& s = subarray(open_sa_);
  if (t1 < kSenseEnableNs) {
    // PRE arrived before the sense amplifiers fired: the open cells were
    // left half charge-shared with the bitline -> ~VDD/2 (Frac, §2.2).
    for (RowAddr local : open_local_rows_) {
      s.set_row_state(local, RowState::kFrac);
      ++stats_.frac_events;
    }
  }
  s.latches().clear();
  open_local_rows_.clear();
  write_masks_.clear();
  phase_ = Phase::kIdle;
}

void Bank::act(RowAddr row, double t_ns) {
  check_time(t_ns);
  ++stats_.acts;
  if (row >= ctx_.profile->geometry.rows_per_bank)
    throw std::out_of_range("row address out of bank range");
  const SubarrayId sa = subarray_of(row);
  // The decoder drives the *internal* wordline; vendors may scramble the
  // in-subarray bits of the logical address the host sends.
  const RowAddr local = ctx_.profile->scrambler.to_internal(local_of(row));

  switch (phase_) {
    case Phase::kIdle:
      open_single(local, sa, t_ns);
      return;
    case Phase::kOpen:
      // ACT to an open bank is ignored by the device.
      ++stats_.ignored_commands;
      return;
    case Phase::kPrecharging: {
      const double t1 = t_pre_ - t_last_act_;
      const double t2 = t_ns - t_pre_;
      const double tRP = ctx_.profile->timings.tRP.value;
      if (ctx_.profile->gates_violated_timings && t2 < tRP) {
        // Mfr. S: internal circuitry drops the violated PRE/ACT pair
        // (§9 Limitation 1) -- the original row simply stays open.
        ++stats_.gated_commands;
        phase_ = Phase::kOpen;
        return;
      }
      if (t2 < kPrechargeSettleNs && sa == open_sa_) {
        resolve_simultaneous(local, t1, t2, t_ns);
        return;
      }
      if (t2 < tRP && sa == open_sa_) {
        resolve_consecutive(local, t1, t_ns);
        return;
      }
      // Either timings were respected or the second ACT targets another
      // subarray (its own local decoder; the old one de-asserts normally).
      finish_precharge();
      open_single(local, sa, t_ns);
      return;
    }
  }
}

void Bank::resolve_consecutive(RowAddr local, double t1, double t_ns) {
  // t2 past the wordline-settle point but short of tRP: the old wordline
  // de-asserted, the bitlines were *not* precharged, and the SA (if it had
  // latched) still drives the old value -> the newly opened row is
  // overwritten with the row buffer: the RowClone regime (§2.2, fn. 6).
  ++stats_.consecutive_activations;
  const bool sa_latched = t1 >= kSenseEnableNs;
  const BitVec source = row_buffer_;
  const SubarrayId sa = open_sa_;
  finish_precharge();
  open_single(local, sa, t_ns);
  if (sa_latched) {
    // The destination's own charge lost the race: the still-driven SA
    // overwrites the destination cells with the source data. Per-cell
    // write-back stability follows the single-destination copy model.
    Subarray& s = subarray(sa);
    const BitlineContext bctx = bitline_ctx();
    const BitVec& stable =
        ctx_.electrical->copy_stable_mask(bctx, local, 1, source, *ctx_.env);
    BitVec& cells = s.row_data(local);
    // Write-back failures retain the destination's previous charge.
    cells.assign_masked(source, stable);
    row_buffer_ = cells;
  }
}

void Bank::resolve_simultaneous(RowAddr second_local, double t1, double t2,
                                double t_ns) {
  ++stats_.simultaneous_activations;
  Subarray& s = subarray(open_sa_);
  s.latches().latch(second_local);
  if (s.row_state(second_local) != RowState::kFrac)
    apply_cell_faults(s, open_sa_, second_local);
  apa_ = ctx_.electrical->classify_apa(Nanoseconds{t1}, Nanoseconds{t2});

  const RowAddr first_local = open_local_rows_.front();
  differing_fields_ = ctx_.layout->differing_fields(first_local, second_local);

  // Assemble the driven row set; weakly re-latched decoders can drop
  // individual second-group rows (t2 = 1.5 ns).
  std::vector<RowAddr> asserted = s.latches().asserted_rows();
  std::vector<RowAddr> driven;
  driven.reserve(asserted.size());
  for (RowAddr r : asserted) {
    if (r != first_local && apa_.row_dropout_probability > 0.0 &&
        ctx_.rng->chance(apa_.row_dropout_probability))
      continue;
    driven.push_back(r);
  }
  open_local_rows_ = std::move(driven);
  write_masks_.clear();

  const BitVec source = row_buffer_;  // first row's data, held by the SAs.
  const BitlineContext bctx = bitline_ctx();

  // Charge-share resolution over the driven rows (the MAJ outcome on
  // bitlines whose SA had not latched the source).
  std::vector<ConnectedRow> rows;
  rows.reserve(open_local_rows_.size());
  for (RowAddr r : open_local_rows_) {
    ConnectedRow cr;
    cr.local_row = r;
    cr.data = s.row_state(r) == RowState::kFrac ? nullptr : &s.row_data(r);
    cr.weight = (r == first_local)
                    ? 1.0 + apa_.first_row_extra_weight
                    : apa_.second_group_weight;
    rows.push_back(cr);
  }
  const double pattern_noise = ElectricalModel::estimate_pattern_noise(rows);
  ChargeShareResult share = ctx_.electrical->resolve_charge_share(
      bctx, rows, pattern_noise, *ctx_.env, apa_, *ctx_.rng);

  // Blend with the SA-latched (copy) outcome per bitline. The latch-race
  // mask is resolved once for the whole operation instead of re-querying
  // bitline_latched() column by column (and row by row below).
  const std::size_t columns = ctx_.profile->geometry.columns;
  const std::size_t n_dest = open_local_rows_.size() > 0
                                 ? open_local_rows_.size() - 1
                                 : 0;
  BitVec resolved = share.resolved;
  BitVec latched(columns);
  if (apa_.latch_fraction > 0.0) {
    latched = ctx_.electrical->latched_mask(bctx, apa_);
    resolved.assign_masked(source, latched);
  }

  // The SAs restore the resolved value into every driven row. On latched
  // (copy-driven) bitlines, per-cell write-back can fail (Multi-RowCopy
  // stability model); charge-share bitlines restore what they sensed.
  for (RowAddr r : open_local_rows_) {
    BitVec& cells = s.row_data(r);
    if (apa_.latch_fraction > 0.0 && r != first_local && n_dest > 0) {
      const BitVec& stable = ctx_.electrical->copy_stable_mask(
          bctx, r, n_dest, resolved, *ctx_.env);
      // Cells take the resolved value except where a latched bitline's
      // write-back failed: copy-unstable cells retain their previous
      // charge.
      cells.assign_masked(resolved, ~latched | stable);
    } else {
      cells = resolved;
    }
    s.set_row_state(r, RowState::kValid);
  }
  row_buffer_ = resolved;
  apply_apa_disturbance(s);
  phase_ = Phase::kOpen;
  t_last_act_ = t_ns;
}

const BitVec& Bank::write_mask_for(std::size_t open_index) {
  if (write_masks_.empty()) {
    write_masks_.reserve(open_local_rows_.size());
    const BitlineContext bctx = bitline_ctx();
    for (RowAddr r : open_local_rows_) {
      if (open_local_rows_.size() == 1) {
        write_masks_.emplace_back(ctx_.profile->geometry.columns, true);
      } else {
        write_masks_.push_back(ctx_.electrical->write_overdrive_mask(
            bctx, r, differing_fields_, *ctx_.env, apa_));
      }
    }
  }
  return write_masks_[open_index];
}

void Bank::write(ColAddr start_bit, const BitVec& data, double t_ns) {
  check_time(t_ns);
  ++stats_.writes;
  if (phase_ != Phase::kOpen) {
    ++stats_.ignored_commands;
    return;
  }
  if (start_bit + data.size() > row_buffer_.size())
    throw std::out_of_range("write beyond row width");
  row_buffer_.assign_range(start_bit, data);
  Subarray& s = subarray(open_sa_);
  const bool full_row = start_bit == 0 && data.size() == row_buffer_.size();
  BitVec window;
  if (!full_row) {
    window = BitVec(row_buffer_.size());
    window.set_range(start_bit, data.size(), true);
  }
  for (std::size_t i = 0; i < open_local_rows_.size(); ++i) {
    const BitVec& mask = write_mask_for(i);
    BitVec& cells = s.row_data(open_local_rows_[i]);
    if (full_row) {
      cells.assign_masked(row_buffer_, mask);
    } else {
      cells.assign_masked(row_buffer_, mask & window);
    }
  }
}

BitVec Bank::read(ColAddr start_bit, std::size_t nbits, double t_ns) {
  check_time(t_ns);
  ++stats_.reads;
  if (phase_ != Phase::kOpen)
    throw std::logic_error("RD issued to a bank with no open row");
  return row_buffer_.slice(start_bit, nbits);
}

void Bank::pre(double t_ns) {
  check_time(t_ns);
  ++stats_.pres;
  if (phase_ != Phase::kOpen) {
    ++stats_.ignored_commands;
    return;
  }
  phase_ = Phase::kPrecharging;
  t_pre_ = t_ns;
}

void Bank::refresh(double t_ns) {
  check_time(t_ns);
  if (phase_ == Phase::kPrecharging &&
      t_ns - t_pre_ >= ctx_.profile->timings.tRP.value) {
    finish_precharge();
  }
  if (phase_ != Phase::kIdle) {
    ++stats_.ignored_commands;
    return;
  }
  ++stats_.refreshes;
}

std::vector<RowAddr> Bank::open_rows() const {
  std::vector<RowAddr> rows;
  if (phase_ != Phase::kOpen) return rows;
  rows.reserve(open_local_rows_.size());
  // Internal wordlines map back to the logical addresses the host sees.
  for (RowAddr r : open_local_rows_)
    rows.push_back(global_of(open_sa_, ctx_.profile->scrambler.to_logical(r)));
  return rows;
}

BitVec& Bank::backdoor_row(RowAddr global_row) {
  return subarray(subarray_of(global_row))
      .row_data(ctx_.profile->scrambler.to_internal(local_of(global_row)));
}

const BitVec& Bank::backdoor_row(RowAddr global_row) const {
  auto it = subarrays_.find(subarray_of(global_row));
  if (it == subarrays_.end())
    throw std::out_of_range("subarray never touched");
  return it->second->row_data(
      ctx_.profile->scrambler.to_internal(local_of(global_row)));
}

RowState Bank::backdoor_row_state(RowAddr global_row) const {
  auto it = subarrays_.find(subarray_of(global_row));
  if (it == subarrays_.end()) return RowState::kValid;
  return it->second->row_state(
      ctx_.profile->scrambler.to_internal(local_of(global_row)));
}

void Bank::backdoor_set_row_state(RowAddr global_row, RowState state) {
  subarray(subarray_of(global_row))
      .set_row_state(ctx_.profile->scrambler.to_internal(local_of(global_row)),
                     state);
}

}  // namespace simra::dram
