#pragma once

#include <cstdint>
#include <string>

#include "bender/program.hpp"

namespace simra::bender {

/// DDR4 command-bus pin state for one command slot (JESD79-4 command
/// truth table). DDR4 multiplexes the command onto ACT_n plus the three
/// legacy strobes that double as address bits A16/A15/A14 when ACT_n is
/// high; the row address shares the A[17:0] pins.
struct PinState {
  bool cs_n = true;   ///< chip select, active low; true = DESELECT.
  bool act_n = true;  ///< activation command pin, active low.
  bool ras_n = true;  ///< RAS_n / A16.
  bool cas_n = true;  ///< CAS_n / A15.
  bool we_n = true;   ///< WE_n / A14.
  std::uint32_t address = 0;  ///< A[17:0]; row, or column + A10 flags.
  std::uint8_t bank_group = 0;  ///< BG[1:0].
  std::uint8_t bank = 0;        ///< BA[1:0].

  bool operator==(const PinState&) const = default;

  /// One-line rendering ("CS# L ACT# L BG1 BA2 A=0x00ff ...").
  std::string to_string() const;
};

/// Encodes/decodes between the testbed's command representation and the
/// DDR4 pin truth table. The host software (this layer) is what the
/// paper's DRAM Bender programs ultimately compile to.
class CommandEncoder {
 public:
  /// A10 flag: auto-precharge for RD/WR, all-banks for PRE.
  static constexpr std::uint32_t kA10 = 1u << 10;

  /// Encodes a command's slot into pin state. Column-bearing commands
  /// encode the *column address* (bit offset / 64-bit burst).
  static PinState encode(const TimedCommand& command);

  /// Decoded view of a pin state.
  struct Decoded {
    enum class Kind : std::uint8_t {
      kDeselect,
      kActivate,
      kPrecharge,
      kPrechargeAll,
      kRead,
      kWrite,
      kRefresh,
      kUnknown,
    };
    Kind kind = Kind::kDeselect;
    dram::BankId bank = 0;       ///< flat bank id (BG * 4 + BA).
    dram::RowAddr row = 0;       ///< for kActivate.
    std::uint32_t column = 0;    ///< burst-granular column for RD/WR.
    bool auto_precharge = false; ///< A10 on a RD/WR: close the row after.
  };

  static Decoded decode(const PinState& pins);

  /// Flat bank id <-> (bank group, bank address) split used on the bus.
  static std::uint8_t bank_group_of(dram::BankId bank) { return bank >> 2; }
  static std::uint8_t bank_address_of(dram::BankId bank) { return bank & 3; }

  static std::string kind_name(Decoded::Kind kind);
};

}  // namespace simra::bender
