#include "verify/analyzer.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdio>
#include <deque>
#include <map>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "common/env.hpp"
#include "obs/trace.hpp"

namespace simra::verify {
namespace {

using bender::CommandKind;
using bender::TimedCommand;

// Local name table so simra_verify needs no symbols from simra_bender
// (the link goes the other way: the executor gate pulls in this library).
const char* command_name(CommandKind kind, bool a10) {
  switch (kind) {
    case CommandKind::kAct:
      return "ACT";
    case CommandKind::kPre:
      return a10 ? "PREA" : "PRE";
    case CommandKind::kWr:
      return a10 ? "WRA" : "WR";
    case CommandKind::kRd:
      return a10 ? "RDA" : "RD";
    case CommandKind::kRef:
      return "REF";
  }
  return "?";
}

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

constexpr std::size_t kNumKinds = 5;

std::size_t kind_index(CommandKind kind) {
  return static_cast<std::size_t>(kind);
}

/// The per-bank protocol state machine. Transitions out of kActivating
/// and kPrecharging are aged lazily: a bank that saw ACT at slot a is
/// considered OPEN from slot a + tRCD, and a bank that saw PRE at slot p
/// is considered IDLE from slot p + tRP.
enum class BankPhase : std::uint8_t {
  kIdle,
  kActivating,
  kOpen,
  kPrecharging,
};

struct BankState {
  BankPhase phase = BankPhase::kIdle;
  std::uint64_t phase_since = 0;  ///< slot of the ACT/PRE that set the phase.

  BankPhase effective(std::uint64_t slot, const RuleTable& table) const {
    if (phase == BankPhase::kActivating &&
        slot >= phase_since + table.trcd_slots) {
      return BankPhase::kOpen;
    }
    if (phase == BankPhase::kPrecharging &&
        slot >= phase_since + table.trp_slots) {
      return BankPhase::kIdle;
    }
    return phase;
  }
};

struct LastSeen {
  std::uint64_t slot = 0;
  std::size_t index = 0;
};

struct Analysis {
  const RuleTable& table;
  std::vector<Finding> findings;
  std::map<int, BankState> banks;
  // Most recent command of each kind, per bank and rank-wide, with its
  // index for provenance.
  std::map<int, std::array<std::optional<LastSeen>, kNumKinds>> last_bank;
  std::array<std::optional<LastSeen>, kNumKinds> last_rank;
  // Rolling ACT history for the tFAW window rule.
  std::deque<LastSeen> act_window;

  explicit Analysis(const RuleTable& t) : table(t) {}

  void protocol_finding(FindingKind kind, Severity severity,
                        const TimedCommand& cmd, std::size_t index) {
    Finding f;
    f.kind = kind;
    f.severity = severity;
    f.classification = Classification::kUnexpected;
    f.slot = cmd.slot;
    f.command_index = index;
    f.command = cmd.kind;
    f.bank = cmd.kind == CommandKind::kRef ? kAnyBank
                                           : static_cast<int>(cmd.bank);
    findings.push_back(std::move(f));
  }

  void timing_finding(const RuleSpec& rule, const TimedCommand& cmd,
                      std::size_t index, const LastSeen& prior) {
    Finding f;
    f.kind = FindingKind::kTimingViolation;
    f.severity = Severity::kError;
    f.classification = Classification::kUnexpected;
    f.rule = rule.rule;
    f.slot = cmd.slot;
    f.command_index = index;
    f.command = cmd.kind;
    f.bank = cmd.kind == CommandKind::kRef ? kAnyBank
                                           : static_cast<int>(cmd.bank);
    f.actual_slots = cmd.slot - prior.slot;
    f.required_slots = rule.min_slots;
    f.prior_slot = prior.slot;
    f.prior_index = prior.index;
    findings.push_back(std::move(f));
  }

  /// Runs every pairwise rule whose `second` matches `cmd`. When several
  /// rules of the same RuleId match (tCCD has RD/WR × RD/WR entries),
  /// only the tightest observed gap is reported, so one short gap yields
  /// one diagnostic.
  void check_pairwise(const TimedCommand& cmd, std::size_t index,
                      std::optional<RuleId> skip = std::nullopt) {
    std::map<RuleId, std::pair<const RuleSpec*, LastSeen>> hits;
    for (const RuleSpec& rule : table.pairwise) {
      if (rule.second != cmd.kind) continue;
      if (skip && rule.rule == *skip) continue;
      const std::optional<LastSeen>* prior = nullptr;
      if (rule.scope == Scope::kSameBank) {
        auto it = last_bank.find(static_cast<int>(cmd.bank));
        if (it == last_bank.end()) continue;
        prior = &it->second[kind_index(rule.first)];
      } else {
        prior = &last_rank[kind_index(rule.first)];
      }
      if (!prior->has_value()) continue;
      const std::uint64_t gap = cmd.slot - (*prior)->slot;
      if (gap >= rule.min_slots) continue;
      auto [it, inserted] = hits.try_emplace(rule.rule, &rule, **prior);
      if (!inserted && (*prior)->slot > it->second.second.slot) {
        it->second = {&rule, **prior};
      }
    }
    for (const auto& [rule_id, hit] : hits) {
      timing_finding(*hit.first, cmd, index, hit.second);
    }
  }

  void record(const TimedCommand& cmd, std::size_t index) {
    const LastSeen seen{cmd.slot, index};
    last_bank[static_cast<int>(cmd.bank)][kind_index(cmd.kind)] = seen;
    last_rank[kind_index(cmd.kind)] = seen;
  }

  void check_tfaw(const TimedCommand& cmd, std::size_t index) {
    for (const WindowRuleSpec& rule : table.windows) {
      if (rule.kind != cmd.kind) continue;
      while (!act_window.empty() &&
             cmd.slot - act_window.front().slot >= rule.window_slots) {
        act_window.pop_front();
      }
      act_window.push_back({cmd.slot, index});
      if (act_window.size() <= rule.max_count) continue;
      const LastSeen& oldest = act_window.front();
      Finding f;
      f.kind = FindingKind::kTimingViolation;
      f.severity = Severity::kError;
      f.classification = Classification::kUnexpected;
      f.rule = rule.rule;
      f.slot = cmd.slot;
      f.command_index = index;
      f.command = cmd.kind;
      f.bank = static_cast<int>(cmd.bank);
      f.actual_slots = cmd.slot - oldest.slot;
      f.required_slots = rule.window_slots;
      f.prior_slot = oldest.slot;
      f.prior_index = oldest.index;
      findings.push_back(std::move(f));
    }
  }

  BankState& bank(int id) { return banks[id]; }

  void precharge_bank(int id, std::uint64_t slot, std::size_t index) {
    BankState& state = bank(id);
    state.phase = BankPhase::kPrecharging;
    state.phase_since = slot;
    const LastSeen seen{slot, index};
    last_bank[id][kind_index(CommandKind::kPre)] = seen;
    last_rank[kind_index(CommandKind::kPre)] = seen;
  }

  void step(const TimedCommand& cmd, std::size_t index) {
    const int bank_id = static_cast<int>(cmd.bank);
    switch (cmd.kind) {
      case CommandKind::kAct: {
        BankState& state = bank(bank_id);
        const BankPhase phase = state.effective(cmd.slot, table);
        if (phase == BankPhase::kOpen || phase == BankPhase::kActivating) {
          protocol_finding(FindingKind::kDoubleActivate, Severity::kError,
                           cmd, index);
        }
        check_pairwise(cmd, index);
        check_tfaw(cmd, index);
        state.phase = BankPhase::kActivating;
        state.phase_since = cmd.slot;
        record(cmd, index);
        break;
      }
      case CommandKind::kPre: {
        if (cmd.a10) {
          // PREA (precharge-all): per-bank PRE semantics for every bank
          // that is not already effectively idle; idle banks are skipped
          // without a diagnostic (blanket precharge is normal usage).
          for (auto& [id, state] : banks) {
            if (state.effective(cmd.slot, table) == BankPhase::kIdle) continue;
            TimedCommand per_bank = cmd;
            per_bank.bank = static_cast<dram::BankId>(id);
            check_pairwise(per_bank, index);
            precharge_bank(id, cmd.slot, index);
          }
          break;
        }
        BankState& state = bank(bank_id);
        const BankPhase phase = state.effective(cmd.slot, table);
        if (phase == BankPhase::kIdle || phase == BankPhase::kPrecharging) {
          protocol_finding(FindingKind::kPrechargeIdleBank, Severity::kWarning,
                           cmd, index);
        }
        check_pairwise(cmd, index);
        state.phase = BankPhase::kPrecharging;
        state.phase_since = cmd.slot;
        record(cmd, index);
        break;
      }
      case CommandKind::kWr:
      case CommandKind::kRd: {
        BankState& state = bank(bank_id);
        const BankPhase phase = state.effective(cmd.slot, table);
        if (phase == BankPhase::kIdle || phase == BankPhase::kPrecharging) {
          protocol_finding(cmd.kind == CommandKind::kRd
                               ? FindingKind::kReadClosedBank
                               : FindingKind::kWriteClosedBank,
                           Severity::kError, cmd, index);
        }
        check_pairwise(cmd, index);
        record(cmd, index);
        if (cmd.a10) {
          // Auto-precharge: the bank closes after the column access. The
          // implicit PRE is recorded for downstream tRP checks, but the
          // tRAS/tWR constraints on it are not modelled (the hardware
          // internally delays the precharge to satisfy them).
          precharge_bank(bank_id, cmd.slot, index);
        }
        break;
      }
      case CommandKind::kRef: {
        for (auto& [id, state] : banks) {
          const BankPhase phase = state.effective(cmd.slot, table);
          if (phase == BankPhase::kOpen || phase == BankPhase::kActivating) {
            protocol_finding(FindingKind::kRefreshOpenBank, Severity::kError,
                             cmd, index);
            break;  // one diagnostic per REF, not one per open bank.
          }
        }
        check_pairwise(cmd, index);
        record(cmd, index);
        break;
      }
    }
  }
};

}  // namespace

namespace detail {

void classify_findings(std::vector<Finding>& findings,
                       const std::vector<Intent>& intents) {
  for (Finding& f : findings) {
    if (f.kind != FindingKind::kTimingViolation &&
        f.kind != FindingKind::kProgramCheck) {
      continue;
    }
    for (const Intent& intent : intents) {
      if (f.kind == FindingKind::kTimingViolation) {
        if (intent.check || intent.rule != *f.rule) continue;
      } else {
        if (!intent.check || *intent.check != *f.check) continue;
      }
      if (intent.bank != kAnyBank && intent.bank != f.bank) continue;
      f.classification = Classification::kIntended;
      f.severity = Severity::kNote;
      f.intent_label = intent.label;
      break;
    }
  }
}

void rank_findings(std::vector<Finding>& findings) {
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.severity != b.severity) return a.severity > b.severity;
                     if (a.slot != b.slot) return a.slot < b.slot;
                     return a.command_index < b.command_index;
                   });
}

}  // namespace detail

std::string Finding::message() const {
  std::ostringstream out;
  out << severity_name(severity) << ": slot " << slot << ' '
      << command_name(command, false);
  if (bank != kAnyBank) out << " bank" << bank;
  out << ": ";
  switch (kind) {
    case FindingKind::kTimingViolation:
      out << rule_name(*rule) << " violated";
      if (classification == Classification::kIntended) {
        out << " (intended";
        if (!intent_label.empty()) out << ": " << intent_label;
        out << ')';
      }
      if (rule == RuleId::kTfaw) {
        out << " — 5 ACTs within " << actual_slots + 1 << " slots (window "
            << required_slots << ')';
      } else {
        out << " — " << actual_slots << " slots since "
            << (prior_slot ? "prior command" : "?") << " at slot "
            << (prior_slot ? *prior_slot : 0) << " (min " << required_slots
            << ')';
      }
      break;
    case FindingKind::kReadClosedBank:
      out << "RD issued to a bank with no open row";
      break;
    case FindingKind::kWriteClosedBank:
      out << "WR issued to a bank with no open row";
      break;
    case FindingKind::kDoubleActivate:
      out << "ACT while the bank is already activating/open (missing PRE)";
      break;
    case FindingKind::kPrechargeIdleBank:
      out << "PRE of an already-idle bank";
      break;
    case FindingKind::kRefreshOpenBank:
      out << "REF while at least one bank is open";
      break;
    case FindingKind::kProgramCheck:
      out << check_name(*check);
      if (classification == Classification::kIntended) {
        out << " (intended";
        if (!intent_label.empty()) out << ": " << intent_label;
        out << ')';
      }
      if (!note.empty()) out << " — " << note;
      break;
  }
  return out.str();
}

bool Report::has_unexpected() const {
  return std::any_of(findings.begin(), findings.end(), [](const Finding& f) {
    return f.classification == Classification::kUnexpected;
  });
}

std::size_t Report::count(Classification c) const {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [c](const Finding& f) { return f.classification == c; }));
}

std::string Report::to_string() const {
  std::ostringstream out;
  out << "verify: program '"
      << (program_name.empty() ? "<unnamed>" : program_name) << "': "
      << findings.size() << " finding" << (findings.size() == 1 ? "" : "s")
      << " (" << count(Classification::kIntended) << " intended, "
      << count(Classification::kUnexpected) << " unexpected)";
  for (const Finding& f : findings) {
    out << "\n  " << f.message();
  }
  return out.str();
}

VerifyError::VerifyError(Report report)
    : std::runtime_error(report.to_string()), report_(std::move(report)) {}

Report analyze(const bender::Program& program, const RuleTable& table) {
  Analysis analysis(table);
  const auto& commands = program.commands();
  for (std::size_t i = 0; i < commands.size(); ++i) {
    analysis.step(commands[i], i);
  }
  detail::classify_findings(analysis.findings, program.intents());
  detail::rank_findings(analysis.findings);
  Report report;
  report.program_name = program.name();
  report.findings = std::move(analysis.findings);
  return report;
}

Report analyze(const bender::Program& program,
               const dram::TimingParams& timings) {
  return analyze(program, RuleTable::ddr4(timings));
}

Mode parse_mode(std::string_view text) {
  if (text.empty() || text == "off" || text == "0" || text == "none") {
    return Mode::kOff;
  }
  if (text == "warn" || text == "1") return Mode::kWarn;
  if (text == "strict" || text == "2" || text == "error") return Mode::kStrict;
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true)) {
    std::fprintf(stderr,
                 "simra: unknown SIMRA_VERIFY value '%.*s'; assuming 'warn'\n",
                 static_cast<int>(text.size()), text.data());
  }
  return Mode::kWarn;
}

namespace {

// -1 = not yet resolved from the environment; test overrides win.
std::atomic<int> g_mode{-1};
std::atomic<bool> g_mode_overridden{false};

}  // namespace

Mode global_mode() {
  int cached = g_mode.load(std::memory_order_acquire);
  if (cached >= 0) return static_cast<Mode>(cached);
  const Mode mode = parse_mode(env_string("SIMRA_VERIFY", ""));
  g_mode.store(static_cast<int>(mode), std::memory_order_release);
  return mode;
}

void set_global_mode(std::optional<Mode> mode) {
  if (mode) {
    g_mode_overridden.store(true, std::memory_order_release);
    g_mode.store(static_cast<int>(*mode), std::memory_order_release);
  } else {
    g_mode_overridden.store(false, std::memory_order_release);
    g_mode.store(-1, std::memory_order_release);
  }
}

void gate(const bender::Program& program,
          const dram::TimingParams& timings) {
  const Mode mode = global_mode();
  if (mode == Mode::kOff) return;
  Report report = analyze(program, timings);
  if (!report.has_unexpected()) return;
  // Structured events come before the printed-warning dedup below: the
  // dedup set is shared across tasks (scheduling-dependent), but these
  // land in the calling task's own buffer, so the log stays deterministic.
  for (const Finding& f : report.findings) {
    if (f.classification != Classification::kUnexpected) continue;
    obs::emit_event("verify.finding", {{"program", report.program_name},
                                       {"message", f.message()}});
  }
  if (mode == Mode::kStrict) throw VerifyError(std::move(report));
  // Warn mode: characterization sweeps run thousands of structurally
  // identical programs, so deduplicate by rendered report before printing.
  static std::mutex mutex;
  static std::unordered_set<std::string> seen;
  const std::string rendered = report.to_string();
  std::lock_guard<std::mutex> lock(mutex);
  if (seen.insert(rendered).second) {
    std::fprintf(stderr, "%s\n", rendered.c_str());
  }
}

}  // namespace simra::verify
