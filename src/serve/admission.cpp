#include "serve/admission.hpp"

#include "common/rng.hpp"

namespace simra::serve {

const char* to_string(Admission verdict) {
  switch (verdict) {
    case Admission::kAdmit:
      return "admit";
    case Admission::kQueueFull:
      return "queue_full";
    case Admission::kTenantOverQuota:
      return "tenant_over_quota";
  }
  return "?";
}

AdmissionController::AdmissionController(std::size_t global_limit,
                                         std::size_t tenant_quota,
                                         std::size_t tenant_slots)
    : global_limit_(global_limit),
      tenant_quota_(tenant_quota),
      tenant_slots_(tenant_slots == 0 ? 1 : tenant_slots),
      tenants_(std::make_unique<std::atomic<std::int64_t>[]>(
          tenant_slots == 0 ? 1 : tenant_slots)) {
  for (std::size_t i = 0; i < tenant_slots_; ++i)
    tenants_[i].store(0, std::memory_order_relaxed);
}

std::size_t AdmissionController::slot_of(std::uint32_t tenant) const noexcept {
  return static_cast<std::size_t>(hash64(tenant)) % tenant_slots_;
}

Admission AdmissionController::try_admit(std::uint32_t tenant) noexcept {
  // Optimistic increments with rollback: both counters only ever
  // over-count transiently, so the caps are never exceeded once the
  // verdict is returned.
  const std::int64_t global_now =
      global_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (global_now > static_cast<std::int64_t>(global_limit_)) {
    global_.fetch_sub(1, std::memory_order_relaxed);
    return Admission::kQueueFull;
  }
  std::atomic<std::int64_t>& slot = tenants_[slot_of(tenant)];
  const std::int64_t tenant_now =
      slot.fetch_add(1, std::memory_order_relaxed) + 1;
  if (tenant_now > static_cast<std::int64_t>(tenant_quota_)) {
    slot.fetch_sub(1, std::memory_order_relaxed);
    global_.fetch_sub(1, std::memory_order_relaxed);
    return Admission::kTenantOverQuota;
  }
  return Admission::kAdmit;
}

void AdmissionController::release(std::uint32_t tenant) noexcept {
  tenants_[slot_of(tenant)].fetch_sub(1, std::memory_order_relaxed);
  global_.fetch_sub(1, std::memory_order_relaxed);
}

std::size_t AdmissionController::tenant_in_flight(
    std::uint32_t tenant) const noexcept {
  const std::int64_t v =
      tenants_[slot_of(tenant)].load(std::memory_order_relaxed);
  return v > 0 ? static_cast<std::size_t>(v) : 0;
}

}  // namespace simra::serve
