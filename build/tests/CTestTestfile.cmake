# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/dram_test[1]_include.cmake")
include("/root/repo/build/tests/bender_test[1]_include.cmake")
include("/root/repo/build/tests/pud_test[1]_include.cmake")
include("/root/repo/build/tests/spice_test[1]_include.cmake")
include("/root/repo/build/tests/majsynth_test[1]_include.cmake")
include("/root/repo/build/tests/casestudy_test[1]_include.cmake")
include("/root/repo/build/tests/charz_test[1]_include.cmake")
include("/root/repo/build/tests/property_suite_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
