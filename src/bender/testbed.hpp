#pragma once

#include <memory>
#include <vector>

#include "bender/executor.hpp"
#include "bender/instruments.hpp"
#include "dram/module.hpp"

namespace simra::bender {

/// The complete experimental setup of Fig 2: a module under test on the
/// FPGA board, rubber-heater temperature control, and the external VPP
/// supply. One executor per chip (the chips share the command bus, so
/// programs are replayed identically on each chip — lockstep).
class Testbed {
 public:
  explicit Testbed(std::unique_ptr<dram::Module> module);

  dram::Module& module() noexcept { return *module_; }
  const dram::Module& module() const noexcept { return *module_; }

  TemperatureController& temperature() noexcept { return temperature_; }
  PowerSupply& vpp_supply() noexcept { return vpp_; }

  std::size_t chip_count() const noexcept { return executors_.size(); }
  Executor& executor(std::size_t chip_index);

  /// Replays `program` on every chip in lockstep; returns per-chip results.
  std::vector<ExecutionResult> run_all(const Program& program);

 private:
  std::unique_ptr<dram::Module> module_;
  TemperatureController temperature_;
  PowerSupply vpp_;
  std::vector<Executor> executors_;
};

}  // namespace simra::bender
