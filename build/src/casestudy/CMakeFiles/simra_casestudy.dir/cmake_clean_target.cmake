file(REMOVE_RECURSE
  "libsimra_casestudy.a"
)
