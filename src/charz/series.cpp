#include "charz/series.hpp"

namespace simra::charz {

namespace {
std::string join_keys(const std::vector<std::string>& keys) {
  std::string out;
  for (const std::string& k : keys) {
    out += k;
    out += '\x1f';
  }
  return out;
}
}  // namespace

void SeriesAccumulator::add(std::vector<std::string> keys, double value) {
  const std::string joined = join_keys(keys);
  auto it = index_.find(joined);
  if (it == index_.end()) {
    entries_.push_back({std::move(keys), {}});
    it = index_.emplace(joined, entries_.size() - 1).first;
  }
  entries_[it->second].samples.add(value);
}

FigureData SeriesAccumulator::finish(
    std::string title, std::vector<std::string> key_columns) const {
  FigureData data;
  data.title = std::move(title);
  data.key_columns = std::move(key_columns);
  data.rows.reserve(entries_.size());
  for (const Entry& e : entries_)
    data.rows.push_back({e.keys, e.samples.box()});
  return data;
}

}  // namespace simra::charz
