# Empty dependencies file for spice_test.
# This may be replaced when dependencies are built.
