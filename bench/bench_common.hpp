#pragma once

#include <cctype>
#include <cstdlib>
#include <iostream>
#include <string>

#include "charz/figure.hpp"
#include "charz/plan.hpp"
#include "common/env.hpp"

namespace simra::bench_common {

/// Prints the standard bench banner: which plan is in use and how to run
/// the paper-scale version.
inline charz::Plan announced_plan(const std::string& what) {
  const charz::Plan plan = charz::Plan::from_env();
  std::cout << "=== " << what << " ===\n";
  std::cout << (full_scale_run()
                    ? "plan: paper-scale (SIMRA_FULL=1)"
                    : "plan: quick (set SIMRA_FULL=1 for the paper-scale run)")
            << " — " << plan.instance_count()
            << " (chip, bank, subarray) instances, " << plan.groups_per_size
            << " row groups per size, " << plan.trials << " trials\n\n";
  return plan;
}

/// Kebab-case slug of a figure title for CSV file names.
inline std::string title_slug(const std::string& title) {
  std::string slug;
  for (char c : title) {
    if (std::isalnum(static_cast<unsigned char>(c)))
      slug.push_back(static_cast<char>(std::tolower(c)));
    else if (!slug.empty() && slug.back() != '-')
      slug.push_back('-');
  }
  while (!slug.empty() && slug.back() == '-') slug.pop_back();
  return slug;
}

/// Prints the figure table; when SIMRA_CSV_DIR is set, also writes the
/// series as CSV there (for plotting scripts).
inline void print_figure(const charz::FigureData& figure) {
  std::cout << figure.title << "\n" << figure.to_table().to_text() << "\n";
  if (const char* dir = std::getenv("SIMRA_CSV_DIR")) {
    const std::string path =
        std::string(dir) + "/" + title_slug(figure.title) + ".csv";
    write_file(path, figure.to_table().to_csv());
    std::cout << "(csv written to " << path << ")\n";
  }
}

/// One paper-reported reference value, printed next to our measurement.
inline void compare(const std::string& label, double paper_pct,
                    double measured_fraction) {
  std::cout << label << ": paper " << Table::num(paper_pct, 2)
            << "% — measured " << Table::num(measured_fraction * 100.0, 2)
            << "%\n";
}

}  // namespace simra::bench_common
