#include "pud/address_mapper.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"

namespace simra::pud {
namespace {

TEST(AddressMapper, DiscoversGroupOnUnscrambledChip) {
  dram::Chip chip(dram::VendorProfile::hynix_m(), 5);
  Engine engine(&chip);
  Rng rng(6);
  AddressMapper mapper(&engine, &rng);
  // Identity mapping: the activated logical rows equal the decoder group.
  const auto group = mapper.discover_group(0, 1, 0, 7);
  EXPECT_EQ(group, (std::vector<dram::RowAddr>{0, 1, 6, 7}));
}

TEST(AddressMapper, ScrambledChipActivatesScatteredLogicalRows) {
  dram::Chip chip(dram::VendorProfile::hynix_m_scrambled(), 5);
  Engine engine(&chip);
  Rng rng(6);
  AddressMapper mapper(&engine, &rng);
  const auto group = mapper.discover_group(0, 1, 0, 7);
  // Still a power-of-two group containing both APA targets...
  EXPECT_EQ(group.size(), 4u);
  EXPECT_TRUE(std::binary_search(group.begin(), group.end(), 0u));
  EXPECT_TRUE(std::binary_search(group.begin(), group.end(), 7u));
  // ...but no longer the identity-layout rows.
  EXPECT_NE(group, (std::vector<dram::RowAddr>{0, 1, 6, 7}));
}

TEST(AddressMapper, RecoversFieldStructureThroughScrambling) {
  // The discovery flow must find five pre-decoders with fan-outs
  // {2, 4, 4, 4, 4} purely via the command interface, despite the
  // xor-fold logical-to-internal mapping.
  dram::Chip chip(dram::VendorProfile::hynix_m_scrambled(), 9);
  Engine engine(&chip);
  Rng rng(10);
  AddressMapper mapper(&engine, &rng);

  const auto structure = mapper.discover_field_structure(0, 1);
  ASSERT_EQ(structure.classes.size(), 5u);
  auto fanouts = structure.fanouts();
  std::sort(fanouts.begin(), fanouts.end());
  EXPECT_EQ(fanouts, (std::vector<unsigned>{2, 4, 4, 4, 4}));
  EXPECT_EQ(structure.decoded_rows(), 512u);
}

TEST(AddressMapper, RecoversMicronStructure) {
  dram::Chip chip(dram::VendorProfile::micron_e(), 11);
  Engine engine(&chip);
  Rng rng(12);
  AddressMapper mapper(&engine, &rng);
  const auto structure = mapper.discover_field_structure(0, 2);
  ASSERT_EQ(structure.classes.size(), 5u);
  for (unsigned f : structure.fanouts()) EXPECT_EQ(f, 4u);
  EXPECT_EQ(structure.decoded_rows(), 1024u);
}

}  // namespace
}  // namespace simra::pud
