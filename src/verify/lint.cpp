#include "verify/lint.hpp"

#include <cstdio>
#include <mutex>
#include <sstream>
#include <unordered_set>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "verify/occupancy.hpp"
#include "verify/optimizer.hpp"

namespace simra::verify {

void report_lint_findings(const std::string& program_name,
                          const std::vector<Finding>& findings) {
  std::size_t unexpected = 0;
  for (const Finding& f : findings) {
    if (f.classification != Classification::kUnexpected) continue;
    ++unexpected;
    obs::emit_event("lint.finding", {{"program", program_name},
                                     {"message", f.message()}});
  }
  if (unexpected == 0) return;
  obs::MetricsRegistry::instance()
      .counter("verify.lint.findings")
      .add_count(unexpected);
  // Characterization sweeps run thousands of structurally identical
  // programs; print each distinct report once (same policy as the gate).
  std::ostringstream out;
  out << "lint: program '"
      << (program_name.empty() ? "<unnamed>" : program_name) << "': "
      << unexpected << " finding" << (unexpected == 1 ? "" : "s");
  for (const Finding& f : findings) {
    if (f.classification == Classification::kUnexpected)
      out << "\n  " << f.message();
  }
  static std::mutex mutex;
  static std::unordered_set<std::string> seen;
  const std::string rendered = out.str();
  std::lock_guard<std::mutex> lock(mutex);
  if (seen.insert(rendered).second) {
    std::fprintf(stderr, "%s\n", rendered.c_str());
  }
}

void lint(const bender::Program& program, const ProgramContext& ctx,
          const ReliabilityPolicy* policy) {
  obs::MetricsRegistry::instance()
      .counter("verify.lint.programs")
      .add_count(1);
  DataflowResult df = dataflow(program, ctx);
  if (policy != nullptr) {
    std::vector<Finding> reliability =
        lint_reliability(df.apas, *policy, program.intents());
    df.findings.insert(df.findings.end(),
                       std::make_move_iterator(reliability.begin()),
                       std::make_move_iterator(reliability.end()));
    detail::rank_findings(df.findings);
  }
  report_lint_findings(program.name(), df.findings);

  OccupancyStats occ = occupancy(program, *ctx.table);
  occ.critical_path_slots = compacted_extent_slots(program, *ctx.table);
  export_occupancy_metrics(occ, program.name());
}

}  // namespace simra::verify
