# Empty dependencies file for simra_casestudy.
# This may be replaced when dependencies are built.
