file(REMOVE_RECURSE
  "libsimra_spice.a"
)
