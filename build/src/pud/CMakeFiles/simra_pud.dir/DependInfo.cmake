
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pud/address_mapper.cpp" "src/pud/CMakeFiles/simra_pud.dir/address_mapper.cpp.o" "gcc" "src/pud/CMakeFiles/simra_pud.dir/address_mapper.cpp.o.d"
  "/root/repo/src/pud/bulk_engine.cpp" "src/pud/CMakeFiles/simra_pud.dir/bulk_engine.cpp.o" "gcc" "src/pud/CMakeFiles/simra_pud.dir/bulk_engine.cpp.o.d"
  "/root/repo/src/pud/engine.cpp" "src/pud/CMakeFiles/simra_pud.dir/engine.cpp.o" "gcc" "src/pud/CMakeFiles/simra_pud.dir/engine.cpp.o.d"
  "/root/repo/src/pud/patterns.cpp" "src/pud/CMakeFiles/simra_pud.dir/patterns.cpp.o" "gcc" "src/pud/CMakeFiles/simra_pud.dir/patterns.cpp.o.d"
  "/root/repo/src/pud/reliability_map.cpp" "src/pud/CMakeFiles/simra_pud.dir/reliability_map.cpp.o" "gcc" "src/pud/CMakeFiles/simra_pud.dir/reliability_map.cpp.o.d"
  "/root/repo/src/pud/row_group.cpp" "src/pud/CMakeFiles/simra_pud.dir/row_group.cpp.o" "gcc" "src/pud/CMakeFiles/simra_pud.dir/row_group.cpp.o.d"
  "/root/repo/src/pud/subarray_mapper.cpp" "src/pud/CMakeFiles/simra_pud.dir/subarray_mapper.cpp.o" "gcc" "src/pud/CMakeFiles/simra_pud.dir/subarray_mapper.cpp.o.d"
  "/root/repo/src/pud/success.cpp" "src/pud/CMakeFiles/simra_pud.dir/success.cpp.o" "gcc" "src/pud/CMakeFiles/simra_pud.dir/success.cpp.o.d"
  "/root/repo/src/pud/vector_unit.cpp" "src/pud/CMakeFiles/simra_pud.dir/vector_unit.cpp.o" "gcc" "src/pud/CMakeFiles/simra_pud.dir/vector_unit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bender/CMakeFiles/simra_bender.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/simra_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/simra_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
