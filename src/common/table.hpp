#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace simra {

/// Column-aligned text table used by the bench harnesses to print the
/// rows/series of each paper figure, plus CSV export for plotting.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; cell count must match the header count.
  void add_row(std::vector<std::string> cells);

  std::size_t rows() const noexcept { return rows_.size(); }

  /// Renders an aligned ASCII table.
  std::string to_text() const;
  /// Renders RFC-4180-ish CSV (cells containing commas/quotes are quoted).
  std::string to_csv() const;

  void print(std::ostream& os) const;

  /// Formats a double with `digits` places after the decimal point.
  static std::string num(double value, int digits = 2);
  /// Formats a percentage (value in [0,1] scaled to 0-100) with digits.
  static std::string pct(double fraction, int digits = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Writes `content` to `path`, creating parent directories if needed.
void write_file(const std::string& path, const std::string& content);

}  // namespace simra
