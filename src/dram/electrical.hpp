#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "common/bitvec.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "dram/process_variation.hpp"
#include "dram/types.hpp"
#include "dram/vendor.hpp"

namespace simra::dram {

/// Operating environment of a chip, set through the testbed's temperature
/// controller and VPP power supply (§3.1).
struct EnvironmentState {
  Celsius temperature{50.0};
  Volts vpp{2.5};
};

/// What an ACT -> PRE -> ACT sequence does, decided by the two timing
/// delays (t1 between ACT and PRE, t2 between PRE and ACT) relative to the
/// device's internal milestones (§2.2, §3).
enum class ApaRegime {
  kNormal,        ///< Timings respected: plain close-then-open.
  kConsecutive,   ///< t2 moderate: wordline swapped while SA latched (RowClone).
  kSimultaneous,  ///< t2 <= ~3 ns: PRE interrupted, many rows open at once.
  kGated,         ///< Vendor ignores the violated command (Mfr. S).
};

/// Quantified consequences of an APA timing choice.
struct ApaDecision {
  ApaRegime regime = ApaRegime::kNormal;
  /// True when the first row's SA had latched (t1 >= sense enable): the
  /// simultaneous activation is SA-driven (Multi-RowCopy) rather than a
  /// charge-share (MAJ).
  bool sa_latched = false;
  /// Fraction of bitlines whose SA managed to latch the source value
  /// (partial for intermediate t1; drives Obs. 15).
  double latch_fraction = 1.0;
  /// Extra charge-share weight of the first-activated row (Obs. 7 hyp. 1).
  double first_row_extra_weight = 0.0;
  /// Charge-transfer weight of the second-group rows (< 1 when t2 is too
  /// short for the wordlines to assert fully).
  double second_group_weight = 1.0;
  /// Per-row probability that a second-group wordline fails to assert
  /// (t2 = 1.5 ns weak re-latch; lower whiskers of Fig 3).
  double row_dropout_probability = 0.0;
  /// Normalized margin penalty applied to WR overdrive (SMRA test).
  double smra_z_penalty = 0.0;
  /// Normalized margin penalty applied to charge-share sensing (MAJX).
  double majx_z_penalty = 0.0;
};

/// One row participating in a charge-share resolution.
struct ConnectedRow {
  RowAddr local_row = 0;
  const BitVec* data = nullptr;  ///< nullptr = Frac row at VDD/2.
  double weight = 1.0;           ///< charge-transfer weight.
};

/// Stable coordinates of the bitline population being resolved, used to
/// key the persistent process-variation deviates.
struct BitlineContext {
  BankId bank = 0;
  SubarrayId subarray = 0;
  /// Hash identifying the simultaneously activated row set (group quality).
  std::uint64_t group_key = 0;
  std::size_t columns = 0;
};

/// Output of a charge-share resolution.
struct ChargeShareResult {
  BitVec resolved;       ///< value latched by each sense amplifier.
  BitVec stable;         ///< bit set where the outcome is deterministic.
  std::size_t ties = 0;  ///< columns with exactly zero net imbalance.
};

/// Thread-safe LRU cache of deviate spans, shared by the slot models of
/// one physical chip: every slot's `Chip` is seeded with the same chip
/// seed (one chip, one variation field), so without sharing each slot
/// recomputes identical spans. Spans are handed out as shared_ptr —
/// eviction here only drops the cache's reference, never a span a model
/// is still holding — and computed under the lock, so concurrent slots
/// requesting the same span dedupe instead of racing. Purely a memo of
/// the deterministic variation field: sharing cannot change any value.
class SharedDeviateCache {
 public:
  /// `uniform` selects the span flavor: raw hashed uniforms (for
  /// monotone threshold compares) or normal deviates (for value use).
  /// The returned block holds `count` floats and stays valid for the
  /// lifetime of the shared_ptr regardless of eviction.
  std::shared_ptr<const float[]> get_or_compute(std::uint64_t salt,
                                               std::uint64_t k1,
                                               std::uint64_t k2,
                                               std::size_t count, bool uniform,
                                               const VariationField& field);

 private:
  struct Key {
    std::uint64_t salt = 0;
    std::uint64_t k1 = 0;
    std::uint64_t k2 = 0;
    std::size_t count = 0;
    bool uniform = false;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept;
  };
  struct Entry {
    std::shared_ptr<const float[]> values;
    std::list<Key>::iterator order_it;
  };
  std::mutex mutex_;
  std::list<Key> order_;  ///< recency order, front = coldest.
  std::unordered_map<Key, Entry, KeyHash> map_;
};

/// Process-wide recycle statistics of the span free-list (SpanPool):
/// `hits` = fills served from a recycled block, `misses` = fresh
/// allocations (first-touch page faults). Monotone counters, also exported
/// as `dram/span_pool_hit` / `dram/span_pool_miss` obs counters and a
/// host-manifest field, so span-reuse regressions show up in metrics.
struct SpanPoolStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  double recycle_rate() const noexcept {
    const std::uint64_t total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / static_cast<double>(total)
                     : 0.0;
  }
};
SpanPoolStats span_pool_stats() noexcept;

/// The analog behaviour model: charge sharing, sensing margins, write
/// overdrive, and copy stability, with persistent process variation.
///
/// All success statistics in the characterization flow through the three
/// resolve/stability entry points below; see calibration.hpp for the
/// provenance of every constant.
class ElectricalModel {
 public:
  ElectricalModel(const VendorProfile* profile, const VariationField* variation);

  /// Attaches the chip-level shared deviate cache (non-owning; nullptr
  /// detaches). On a local-cache miss the model consults `cache` before
  /// computing, so sibling slot models of the same chip reuse spans.
  void share_deviates(SharedDeviateCache* cache) noexcept {
    shared_deviates_ = cache;
  }

  /// Classifies an APA timing pair against the vendor's milestones.
  ApaDecision classify_apa(Nanoseconds t1, Nanoseconds t2) const;

  /// Resolves the sense amplifiers for a simultaneous charge share across
  /// `rows` (the MAJ regime). `pattern_noise` in [0, 0.5] is the
  /// bitline-coupling activity of the stored data (see
  /// pattern_coupling_fraction); `env` scales the charge gain. Unstable
  /// bitlines resolve to a per-trial coin flip drawn from `rng`.
  ChargeShareResult resolve_charge_share(const BitlineContext& ctx,
                                         std::span<const ConnectedRow> rows,
                                         double pattern_noise,
                                         const EnvironmentState& env,
                                         const ApaDecision& apa,
                                         Rng& rng) const;

  /// Per-cell stability of a WR overdrive into `group_rows` simultaneously
  /// open rows (the §3.2 SMRA experiment). Returns, for one destination
  /// row, the mask of cells that accept the written value. The reference
  /// aliases the internal mask memo: use it before the next electrical
  /// call (copy if it must outlive one).
  const BitVec& write_overdrive_mask(const BitlineContext& ctx,
                                     RowAddr local_row,
                                     unsigned differing_fields,
                                     const EnvironmentState& env,
                                     const ApaDecision& apa) const;

  /// Per-cell stability of an SA-driven copy into one destination row
  /// (Multi-RowCopy / RowClone regime). `n_dest` is the total number of
  /// destination rows in the operation; `source` is the data being driven.
  /// Same aliasing rule as write_overdrive_mask.
  const BitVec& copy_stable_mask(const BitlineContext& ctx, RowAddr dest_row,
                                 std::size_t n_dest, const BitVec& source,
                                 const EnvironmentState& env) const;

  /// Whether the sense amplifier of column `c` had latched the source
  /// value before the second ACT connected the other rows (persistent
  /// per bitline; the fraction of latched bitlines is apa.latch_fraction).
  /// Scalar reference for `latched_mask` — prefer the batched form on hot
  /// paths: each call here re-resolves the full deviate span.
  bool bitline_latched(const BitlineContext& ctx, std::size_t column,
                       const ApaDecision& apa) const;

  /// All columns' latch-race outcomes at once: bit c set iff
  /// bitline_latched(ctx, c, apa). Memoized per (bank, subarray, columns,
  /// latch_fraction) — the race deviates are persistent and the threshold
  /// only depends on the APA timing, so repeated trials reuse the mask.
  BitVec latched_mask(const BitlineContext& ctx, const ApaDecision& apa) const;

  /// Resolves sensing of a single Frac (VDD/2) row: each SA falls to its
  /// bias/offset side. Deterministic per bitline for biased designs
  /// (Mfr. M); for unbiased ones the per-trial thermal noise comes from
  /// the chip's counter-based noise stream (`noise`), whose draws are
  /// indexable pure functions of the stream key — so the batch fill is
  /// SIMD-dispatched and invariant to chunking and thread schedule.
  BitVec sense_frac_row(const BitlineContext& ctx,
                        Rng::CounterStream& noise) const;

  /// Measures the coupling activity of the data about to be shared:
  /// byte-periodic (fixed) patterns cancel along the bitline run, aperiodic
  /// (random) data does not. Returns a value in [0, 0.5].
  static double estimate_pattern_noise(std::span<const ConnectedRow> rows);

  const VendorProfile& profile() const noexcept { return *profile_; }

 private:
  /// Full identity of one deviate span. Keying the cache by the whole
  /// tuple (rather than a folded 64-bit digest) makes hash collisions
  /// harmless: equal keys are equal spans by construction.
  struct DeviateKey {
    std::uint64_t salt = 0;
    std::uint64_t k1 = 0;
    std::uint64_t k2 = 0;
    std::size_t count = 0;
    bool uniform = false;
    bool operator==(const DeviateKey&) const = default;
  };
  struct DeviateKeyHash {
    std::size_t operator()(const DeviateKey& k) const noexcept;
  };
  struct DeviateEntry {
    std::shared_ptr<const float[]> values;
    std::list<DeviateKey>::iterator order_it;
  };

  double group_quality(const BitlineContext& ctx, std::uint64_t salt) const;

  /// Per-column persistent deviates for one (salt, k1, k2) entity row,
  /// memoized: they are pure functions of the variation field, and the
  /// characterization sweeps re-touch the same rows thousands of times.
  /// Returned spans stay valid until the entry is evicted; eviction is
  /// least-recently-used, so spans fetched in the current operation are
  /// never invalidated by a later fetch in the same operation.
  std::span<const float> deviates(std::uint64_t salt, std::uint64_t k1,
                                  std::uint64_t k2, std::size_t count) const;

  /// Same identity/caching as `deviates`, but the span holds the raw
  /// hashed uniforms the deviates derive from. Mask paths compare these
  /// against normal_cdf(threshold) — monotone-equivalent to comparing
  /// the deviate against the threshold, with no inverse CDF on the fill.
  std::span<const float> uniforms(std::uint64_t salt, std::uint64_t k1,
                                  std::uint64_t k2, std::size_t count) const;

  std::span<const float> spans(std::uint64_t salt, std::uint64_t k1,
                               std::uint64_t k2, std::size_t count,
                               bool uniform) const;

  const VendorProfile* profile_;
  const VariationField* variation_;
  SharedDeviateCache* shared_deviates_ = nullptr;
  /// LRU over deviate spans: `deviate_order_` is recency order (front =
  /// coldest); hits are spliced to the back, so trimming the front keeps
  /// the spans the current figure is touching.
  mutable std::list<DeviateKey> deviate_order_;
  mutable std::unordered_map<DeviateKey, DeviateEntry, DeviateKeyHash>
      deviate_cache_;
  /// Memoized latch-race masks, keyed by (bank, subarray, columns,
  /// latch_fraction bits).
  mutable std::map<
      std::tuple<BankId, SubarrayId, std::size_t, std::uint64_t>, BitVec>
      latch_mask_cache_;

  /// Memoized `zetas < z_eff` stability masks for write_overdrive_mask and
  /// copy_stable_mask: the mask is a pure function of the deviate span
  /// identity (salt, k1, k2, count) and the folded threshold, and the
  /// trial loops re-request the same (row, threshold) point every trial.
  /// LRU-evicted (like the deviate cache) instead of wiped wholesale, so
  /// paper-scale sweeps whose working set exceeds the capacity degrade to
  /// recomputing the coldest masks rather than thrashing everything.
  /// Per-model only: the slot scheduler partitions (bank, row) work
  /// disjointly across sibling models, so a chip-level mask memo would
  /// never hit (verified empirically) and is deliberately absent.
  const BitVec& threshold_mask_cached(std::uint64_t salt, std::uint64_t k1,
                                      std::uint64_t k2, std::size_t count,
                                      float z_eff) const;
  struct MaskKey {
    std::uint64_t salt = 0;
    std::uint64_t k1 = 0;
    std::uint64_t k2 = 0;
    std::size_t count = 0;
    std::uint32_t z_bits = 0;
    bool operator==(const MaskKey&) const = default;
  };
  struct MaskKeyHash {
    std::size_t operator()(const MaskKey& k) const noexcept;
  };
  struct MaskEntry {
    BitVec mask;
    std::list<MaskKey>::iterator order_it;
  };
  mutable std::list<MaskKey> threshold_mask_order_;
  mutable std::unordered_map<MaskKey, MaskEntry, MaskKeyHash>
      threshold_mask_cache_;
};

/// Hash of a sorted activated-row set, for group-quality keying.
std::uint64_t group_key_of(std::span<const RowAddr> rows);

}  // namespace simra::dram
