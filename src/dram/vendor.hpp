#pragma once

#include <string>
#include <vector>

#include "dram/scrambler.hpp"
#include "dram/timing.hpp"
#include "dram/types.hpp"

namespace simra::dram {

/// Per-manufacturer / per-die behaviour profile (Tables 1 and 2 of the
/// paper). The profile captures everything the characterization found to
/// differ across vendors: geometry, pre-decoder layout, whether violated
/// timings are internally gated (Mfr. S), Frac support (absent in Mfr. M,
/// footnote 5), and a small sensing-margin shift that reproduces the
/// observed capability differences (Mfr. M cannot perform MAJ9; Mfr. H
/// cannot perform MAJ11).
struct VendorProfile {
  std::string manufacturer;   ///< "Mfr. H (SK Hynix)", "Mfr. M (Micron)", "Mfr. S".
  std::string short_name;     ///< "H", "M", "S".
  char die_revision = '?';    ///< 'M', 'A', 'E', 'B'.
  std::string density;        ///< e.g. "4Gb".
  unsigned org_width = 8;     ///< x8 or x16 data pins.
  Geometry geometry;
  TimingParams timings = TimingParams::ddr4_2666();

  /// Additive shift on the normalized MAJX sensing margin z (positive =
  /// more capable). Calibrated so the per-vendor MAJX cutoffs match §5.
  double maj_margin_shift = 0.0;

  /// Mfr. M modules do not support the Frac operation; their sense
  /// amplifiers are biased, so neutral rows are emulated with all-0s/1s.
  bool supports_frac = true;
  /// SA bias direction used for Frac-less neutral-row emulation (+1 or -1,
  /// meaning biased toward one / zero).
  int sense_amp_bias = 0;

  /// Mfr. S chips internally gate PRE/ACT commands with greatly violated
  /// timings (§9 Limitation 1): no simultaneous multi-row activation.
  bool gates_violated_timings = false;

  /// Logical-to-internal row mapping within a subarray. Identity on the
  /// Table 1 profiles (whose internal mapping the paper reverse
  /// engineered away); the *_scrambled() variants model devices whose
  /// mapping still has to be discovered (see pud::AddressMapper).
  RowScrambler scrambler;

  // Table 2 metadata.
  std::string module_identifier;
  std::string chip_identifier;
  std::string module_vendor;
  int modules_tested = 0;
  int chips_per_module = 0;
  int freq_mts = 2666;
  std::string mfr_date = "Unknown";

  int chips_tested() const { return modules_tested * chips_per_module; }

  static VendorProfile hynix_m();   ///< 4Gb x8, M-die, subarray 512 (or 640).
  /// M-die variant with an undiscovered xor-fold internal row mapping
  /// (demonstrates the reverse-engineering flow, pud::AddressMapper).
  static VendorProfile hynix_m_scrambled();
  static VendorProfile hynix_m640();///< M-die variant with 640-row subarrays.
  static VendorProfile hynix_a();   ///< 4Gb x8, A-die, subarray 512.
  static VendorProfile micron_e();  ///< 16Gb x16, E-die, subarray 1024.
  static VendorProfile micron_b();  ///< 16Gb x16, B-die, subarray 1024.
  static VendorProfile samsung();   ///< Gates violated timings; no PUD observed.

  /// The profiles of Table 1/2 (Samsung excluded, as in the paper's main
  /// evaluation).
  static std::vector<VendorProfile> all_tested();
};

}  // namespace simra::dram
