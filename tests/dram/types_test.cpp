#include "dram/types.hpp"

#include <gtest/gtest.h>

namespace simra::dram {
namespace {

TEST(Geometry, SubarrayCount) {
  Geometry g;
  g.rows_per_bank = 1u << 16;
  g.rows_per_subarray = 512;
  EXPECT_EQ(g.subarrays_per_bank(), 128u);
  g.rows_per_subarray = 1024;
  EXPECT_EQ(g.subarrays_per_bank(), 64u);
}

TEST(DataPattern, Names) {
  EXPECT_EQ(to_string(DataPattern::kRandom), "random");
  EXPECT_EQ(to_string(DataPattern::k00FF), "0x00/0xFF");
  EXPECT_EQ(to_string(DataPattern::kAllOnes), "all-1s");
}

TEST(DataPattern, BytePairsAreComplements) {
  for (DataPattern p : {DataPattern::k00FF, DataPattern::kAA55,
                        DataPattern::kCC33, DataPattern::k6699}) {
    const PatternBytes bytes = pattern_bytes(p);
    EXPECT_EQ(static_cast<std::uint8_t>(~bytes.low), bytes.high)
        << to_string(p);
  }
}

TEST(DataPattern, CouplingFractionOnlyForRandom) {
  EXPECT_DOUBLE_EQ(pattern_coupling_fraction(DataPattern::kRandom), 0.5);
  for (DataPattern p : {DataPattern::k00FF, DataPattern::kAA55,
                        DataPattern::kCC33, DataPattern::k6699,
                        DataPattern::kAllZeros, DataPattern::kAllOnes}) {
    EXPECT_DOUBLE_EQ(pattern_coupling_fraction(p), 0.0) << to_string(p);
  }
}

}  // namespace
}  // namespace simra::dram
