/// AVX2 implementations of the dispatchable kernels (see kernels_simd.hpp
/// for the contract). This TU is compiled with -mavx2 -ffp-contract=off:
/// AVX2 alone cannot fuse multiply-adds (FMA is a separate ISA extension
/// we deliberately do not enable) and contraction is disabled besides, so
/// every float operation here is the same IEEE exactly-rounded mul / add /
/// div the scalar loops perform, in the same order — which is what makes
/// the two tiers bit-identical rather than merely close.

#include "dram/kernels_simd.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/normal.hpp"
#include "common/rng.hpp"
#include "dram/kernels.hpp"
#include "dram/process_variation.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

namespace simra::dram::kernels::avx2 {

namespace {

constexpr std::size_t kWordBits = 64;

/// Lane-wise 64 x 64 -> low 64 multiply (AVX2 has only 32 x 32 widening
/// multiplies): lo + ((a_lo * b_hi + a_hi * b_lo) << 32).
inline __m256i mul64(__m256i a, __m256i b) {
  const __m256i cross =
      _mm256_add_epi64(_mm256_mul_epu32(a, _mm256_srli_epi64(b, 32)),
                       _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b));
  return _mm256_add_epi64(_mm256_mul_epu32(a, b),
                          _mm256_slli_epi64(cross, 32));
}

/// splitmix64's mixing rounds (the caller has already added the golden
/// increment), four lanes at once. Matches simra::splitmix64 exactly.
inline __m256i splitmix_mix(__m256i z) {
  z = mul64(_mm256_xor_si256(z, _mm256_srli_epi64(z, 30)),
            _mm256_set1_epi64x(static_cast<long long>(0xbf58476d1ce4e5b9ULL)));
  z = mul64(_mm256_xor_si256(z, _mm256_srli_epi64(z, 27)),
            _mm256_set1_epi64x(static_cast<long long>(0x94d049bb133111ebULL)));
  return _mm256_xor_si256(z, _mm256_srli_epi64(z, 31));
}

/// Exact unsigned 64 -> double conversion for values below 2^53 (all our
/// inputs are 53-bit uniforms). Classic split conversion: the low 32 bits
/// ride in a 2^52-biased mantissa, the high bits in a 2^84-biased one;
/// both partials and their recombination are exact in this range, so the
/// result equals static_cast<double>(x) bit for bit.
inline __m256d u53_to_double(__m256i x) {
  const __m256d two84 = _mm256_set1_pd(19342813113834066795298816.0);
  const __m256d two52 = _mm256_set1_pd(4503599627370496.0);
  const __m256d two84_52 =
      _mm256_set1_pd(19342813113834066795298816.0 + 4503599627370496.0);
  __m256i hi = _mm256_srli_epi64(x, 32);
  hi = _mm256_or_si256(hi, _mm256_castpd_si256(two84));
  const __m256i lo =
      _mm256_blend_epi32(x, _mm256_castpd_si256(two52), 0xAA);
  const __m256d f = _mm256_sub_pd(_mm256_castsi256_pd(hi), two84_52);
  return _mm256_add_pd(f, _mm256_castsi256_pd(lo));
}

}  // namespace

bool compiled() noexcept { return true; }

void threshold_mask(std::span<const float> zetas, float z_eff, BitVec& mask) {
  const std::size_t n = zetas.size();
  const __m256 vz = _mm256_set1_ps(z_eff);
  std::size_t c = 0;
  std::size_t wi = 0;
  for (; n - c >= kWordBits; ++wi, c += kWordBits) {
    std::uint64_t word = 0;
    for (int k = 0; k < 8; ++k) {
      const __m256 v = _mm256_loadu_ps(zetas.data() + c + 8 * k);
      const auto bits = static_cast<unsigned>(
          _mm256_movemask_ps(_mm256_cmp_ps(v, vz, _CMP_LT_OQ)));
      word |= static_cast<std::uint64_t>(bits) << (8 * k);
    }
    mask.set_word(wi, word);
  }
  if (c < n) {
    std::uint64_t word = 0;
    for (std::size_t b = 0; c < n; ++b, ++c)
      word |= static_cast<std::uint64_t>(zetas[c] < z_eff) << b;
    mask.set_word(wi, word);
  }
}

std::uint64_t compare_lt_word(const double* values, std::size_t limit,
                              double threshold) {
  const __m256d vt = _mm256_set1_pd(threshold);
  std::uint64_t word = 0;
  std::size_t b = 0;
  for (; b + 4 <= limit; b += 4) {
    const __m256d v = _mm256_loadu_pd(values + b);
    const auto bits = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_cmp_pd(v, vt, _CMP_LT_OQ)));
    word |= static_cast<std::uint64_t>(bits) << b;
  }
  for (; b < limit; ++b)
    word |= static_cast<std::uint64_t>(values[b] < threshold) << b;
  return word;
}

void offset_noise_mask(std::span<const float> offsets,
                       std::span<const double> noise, double noise_scale,
                       BitVec& mask) {
  const std::size_t n = offsets.size();
  const __m256d vscale = _mm256_set1_pd(noise_scale);
  const __m256d zero = _mm256_setzero_pd();
  std::size_t c = 0;
  std::size_t wi = 0;
  for (; n - c >= kWordBits; ++wi, c += kWordBits) {
    std::uint64_t word = 0;
    for (int k = 0; k < 16; ++k) {
      // Same order as the scalar expression: widen the float offset,
      // multiply scale * noise, add, compare. No FMA (see file header).
      const __m256d off =
          _mm256_cvtps_pd(_mm_loadu_ps(offsets.data() + c + 4 * k));
      const __m256d nz =
          _mm256_mul_pd(vscale, _mm256_loadu_pd(noise.data() + c + 4 * k));
      const __m256d sum = _mm256_add_pd(off, nz);
      const auto bits = static_cast<unsigned>(
          _mm256_movemask_pd(_mm256_cmp_pd(sum, zero, _CMP_GT_OQ)));
      word |= static_cast<std::uint64_t>(bits) << (4 * k);
    }
    mask.set_word(wi, word);
  }
  if (c < n) {
    std::uint64_t word = 0;
    for (std::size_t b = 0; c < n; ++b, ++c)
      word |= static_cast<std::uint64_t>(
                  offsets[c] + noise_scale * noise[c] > 0.0)
              << b;
    mask.set_word(wi, word);
  }
}

std::size_t lag8_full_words(const std::uint64_t* words, std::size_t count) {
  constexpr std::uint64_t kSampleBits = 0x0001'0001'0001'0001ULL;
  const __m256i sample =
      _mm256_set1_epi64x(static_cast<long long>(kSampleBits));
  const __m256i zero = _mm256_setzero_si256();
  __m256i acc = zero;
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256i w =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + i));
    __m256i d = _mm256_xor_si256(w, _mm256_srli_epi64(w, 8));
    d = _mm256_and_si256(d, sample);
    // Every masked byte is 0 or 1, so the sum-of-absolute-differences
    // against zero is exactly the per-lane popcount.
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(d, zero));
  }
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::size_t disagree = static_cast<std::size_t>(lanes[0] + lanes[1] +
                                                  lanes[2] + lanes[3]);
  for (; i < count; ++i) {
    const std::uint64_t d = words[i] ^ (words[i] >> 8);
    disagree += static_cast<std::size_t>(std::popcount(d & kSampleBits));
  }
  return disagree;
}

void column_counts_word(const std::uint64_t planes[6], std::uint8_t* out) {
  // Byte replication control: lane 0 spreads chunk bytes 0/1 over byte
  // positions 0-15, lane 1 spreads chunk bytes 2/3 (which set1_epi32 also
  // placed at lane-local indices 2/3) over positions 16-31.
  const __m256i sel = _mm256_setr_epi8(0, 0, 0, 0, 0, 0, 0, 0,  //
                                       1, 1, 1, 1, 1, 1, 1, 1,  //
                                       2, 2, 2, 2, 2, 2, 2, 2,  //
                                       3, 3, 3, 3, 3, 3, 3, 3);
  const __m256i bit_of_byte =
      _mm256_set1_epi64x(static_cast<long long>(0x8040201008040201ULL));
  for (int chunk = 0; chunk < 2; ++chunk) {
    __m256i acc = _mm256_setzero_si256();
    for (int p = 0; p < 6; ++p) {
      const auto piece =
          static_cast<std::uint32_t>(planes[p] >> (32 * chunk));
      __m256i v = _mm256_set1_epi32(static_cast<int>(piece));
      v = _mm256_shuffle_epi8(v, sel);
      v = _mm256_and_si256(v, bit_of_byte);
      v = _mm256_cmpeq_epi8(v, bit_of_byte);
      v = _mm256_and_si256(v, _mm256_set1_epi8(static_cast<char>(1 << p)));
      acc = _mm256_or_si256(acc, v);
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 32 * chunk), acc);
  }
}

void hashed_normal_fill(std::uint64_t prefix, std::span<float> out) {
  constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;
  // hash_combine(prefix, i) with the prefix terms hoisted:
  //   s  = prefix ^ (i + kGolden + (prefix << 6) + (prefix >> 2))
  //   h  = splitmix64(s)  (which first adds kGolden again)
  const std::uint64_t c0 = kGolden + (prefix << 6) + (prefix >> 2);
  const __m256i vprefix =
      _mm256_set1_epi64x(static_cast<long long>(prefix));
  const __m256i vc0 = _mm256_set1_epi64x(static_cast<long long>(c0));
  const __m256i vgolden =
      _mm256_set1_epi64x(static_cast<long long>(kGolden));
  const __m256d half = _mm256_set1_pd(0.5);
  const __m256d ulp53 = _mm256_set1_pd(0x1.0p-53);
  const __m256d clamp_lo = _mm256_set1_pd(1e-300);
  const __m256d clamp_hi = _mm256_set1_pd(1.0 - 1e-16);
  constexpr double kPlow = 0.02425;
  const __m256d plow = _mm256_set1_pd(kPlow);
  const __m256d phigh = _mm256_set1_pd(1.0 - kPlow);
  // Acklam's central-branch coefficients, identical to
  // inverse_normal_cdf (process_variation.cpp).
  const __m256d a0 = _mm256_set1_pd(-3.969683028665376e+01);
  const __m256d a1 = _mm256_set1_pd(2.209460984245205e+02);
  const __m256d a2 = _mm256_set1_pd(-2.759285104469687e+02);
  const __m256d a3 = _mm256_set1_pd(1.383577518672690e+02);
  const __m256d a4 = _mm256_set1_pd(-3.066479806614716e+01);
  const __m256d a5 = _mm256_set1_pd(2.506628277459239e+00);
  const __m256d b0 = _mm256_set1_pd(-5.447609879822406e+01);
  const __m256d b1 = _mm256_set1_pd(1.615858368580409e+02);
  const __m256d b2 = _mm256_set1_pd(-1.556989798598866e+02);
  const __m256d b3 = _mm256_set1_pd(6.680131188771972e+01);
  const __m256d b4 = _mm256_set1_pd(-1.328068155288572e+01);
  const __m256d one = _mm256_set1_pd(1.0);
  const std::size_t n = out.size();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i idx = _mm256_setr_epi64x(
        static_cast<long long>(i), static_cast<long long>(i + 1),
        static_cast<long long>(i + 2), static_cast<long long>(i + 3));
    __m256i s =
        _mm256_xor_si256(vprefix, _mm256_add_epi64(idx, vc0));
    s = _mm256_add_epi64(s, vgolden);  // splitmix64's own increment.
    const __m256i h = splitmix_mix(s);
    // hash_to_uniform: 53 high bits -> (0, 1), offset by half a ulp.
    const __m256d u = _mm256_mul_pd(
        _mm256_add_pd(u53_to_double(_mm256_srli_epi64(h, 11)), half),
        ulp53);
    // std::clamp(u, 1e-300, 1 - 1e-16), max-then-min (no NaNs here).
    const __m256d p =
        _mm256_min_pd(_mm256_max_pd(u, clamp_lo), clamp_hi);
    // Central branch, exact scalar operation order:
    //   num = (((((a0 r + a1) r + a2) r + a3) r + a4) r + a5) * q
    //   den = ((((b0 r + b1) r + b2) r + b3) r + b4) r + 1
    const __m256d q = _mm256_sub_pd(p, half);
    const __m256d r = _mm256_mul_pd(q, q);
    __m256d num = _mm256_add_pd(_mm256_mul_pd(a0, r), a1);
    num = _mm256_add_pd(_mm256_mul_pd(num, r), a2);
    num = _mm256_add_pd(_mm256_mul_pd(num, r), a3);
    num = _mm256_add_pd(_mm256_mul_pd(num, r), a4);
    num = _mm256_add_pd(_mm256_mul_pd(num, r), a5);
    num = _mm256_mul_pd(num, q);
    __m256d den = _mm256_add_pd(_mm256_mul_pd(b0, r), b1);
    den = _mm256_add_pd(_mm256_mul_pd(den, r), b2);
    den = _mm256_add_pd(_mm256_mul_pd(den, r), b3);
    den = _mm256_add_pd(_mm256_mul_pd(den, r), b4);
    den = _mm256_add_pd(_mm256_mul_pd(den, r), one);
    __m256d res = _mm256_div_pd(num, den);
    // Tail-probability lanes (~4.85%) re-run the exact scalar routine,
    // whose sqrt/log branches are not worth replicating in vector form.
    const __m256d tails =
        _mm256_or_pd(_mm256_cmp_pd(p, plow, _CMP_LT_OQ),
                     _mm256_cmp_pd(p, phigh, _CMP_GT_OQ));
    const int tail_mask = _mm256_movemask_pd(tails);
    if (tail_mask != 0) {
      alignas(32) double pbuf[4];
      alignas(32) double rbuf[4];
      _mm256_store_pd(pbuf, p);
      _mm256_store_pd(rbuf, res);
      for (int lane = 0; lane < 4; ++lane)
        if ((tail_mask & (1 << lane)) != 0)
          rbuf[lane] = inverse_normal_cdf(pbuf[lane]);
      res = _mm256_load_pd(rbuf);
    }
    _mm_storeu_ps(out.data() + i, _mm256_cvtpd_ps(res));
  }
  for (; i < n; ++i) {
    // Remainder: the exact scalar composition.
    const std::uint64_t h = hash_combine(prefix, i);
    const double u = (static_cast<double>(h >> 11) + 0.5) * 0x1.0p-53;
    out[i] = static_cast<float>(inverse_normal_cdf(u));
  }
}

void counter_normal_fill(std::uint64_t prefix, std::uint64_t base,
                         std::span<double> out) {
  constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;
  // hashed_normal_fill's machinery with a base draw offset and the result
  // kept in double precision (the counter-based noise sampler compares
  // against float offsets later, but the draws themselves are doubles).
  const std::uint64_t c0 = kGolden + (prefix << 6) + (prefix >> 2);
  const __m256i vprefix =
      _mm256_set1_epi64x(static_cast<long long>(prefix));
  const __m256i vc0 = _mm256_set1_epi64x(static_cast<long long>(c0));
  const __m256i vgolden =
      _mm256_set1_epi64x(static_cast<long long>(kGolden));
  const __m256d half = _mm256_set1_pd(0.5);
  const __m256d ulp53 = _mm256_set1_pd(0x1.0p-53);
  const __m256d clamp_lo = _mm256_set1_pd(1e-300);
  const __m256d clamp_hi = _mm256_set1_pd(1.0 - 1e-16);
  constexpr double kPlow = 0.02425;
  const __m256d plow = _mm256_set1_pd(kPlow);
  const __m256d phigh = _mm256_set1_pd(1.0 - kPlow);
  // Acklam's central-branch coefficients, identical to
  // inverse_normal_cdf (common/normal.cpp).
  const __m256d a0 = _mm256_set1_pd(-3.969683028665376e+01);
  const __m256d a1 = _mm256_set1_pd(2.209460984245205e+02);
  const __m256d a2 = _mm256_set1_pd(-2.759285104469687e+02);
  const __m256d a3 = _mm256_set1_pd(1.383577518672690e+02);
  const __m256d a4 = _mm256_set1_pd(-3.066479806614716e+01);
  const __m256d a5 = _mm256_set1_pd(2.506628277459239e+00);
  const __m256d b0 = _mm256_set1_pd(-5.447609879822406e+01);
  const __m256d b1 = _mm256_set1_pd(1.615858368580409e+02);
  const __m256d b2 = _mm256_set1_pd(-1.556989798598866e+02);
  const __m256d b3 = _mm256_set1_pd(6.680131188771972e+01);
  const __m256d b4 = _mm256_set1_pd(-1.328068155288572e+01);
  const __m256d one = _mm256_set1_pd(1.0);
  const std::size_t n = out.size();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const std::uint64_t d0 = base + i;
    const __m256i idx = _mm256_setr_epi64x(
        static_cast<long long>(d0), static_cast<long long>(d0 + 1),
        static_cast<long long>(d0 + 2), static_cast<long long>(d0 + 3));
    __m256i s =
        _mm256_xor_si256(vprefix, _mm256_add_epi64(idx, vc0));
    s = _mm256_add_epi64(s, vgolden);  // splitmix64's own increment.
    const __m256i h = splitmix_mix(s);
    const __m256d u = _mm256_mul_pd(
        _mm256_add_pd(u53_to_double(_mm256_srli_epi64(h, 11)), half),
        ulp53);
    const __m256d p =
        _mm256_min_pd(_mm256_max_pd(u, clamp_lo), clamp_hi);
    const __m256d q = _mm256_sub_pd(p, half);
    const __m256d r = _mm256_mul_pd(q, q);
    __m256d num = _mm256_add_pd(_mm256_mul_pd(a0, r), a1);
    num = _mm256_add_pd(_mm256_mul_pd(num, r), a2);
    num = _mm256_add_pd(_mm256_mul_pd(num, r), a3);
    num = _mm256_add_pd(_mm256_mul_pd(num, r), a4);
    num = _mm256_add_pd(_mm256_mul_pd(num, r), a5);
    num = _mm256_mul_pd(num, q);
    __m256d den = _mm256_add_pd(_mm256_mul_pd(b0, r), b1);
    den = _mm256_add_pd(_mm256_mul_pd(den, r), b2);
    den = _mm256_add_pd(_mm256_mul_pd(den, r), b3);
    den = _mm256_add_pd(_mm256_mul_pd(den, r), b4);
    den = _mm256_add_pd(_mm256_mul_pd(den, r), one);
    __m256d res = _mm256_div_pd(num, den);
    // Tail-probability lanes re-run the exact scalar routine.
    const __m256d tails =
        _mm256_or_pd(_mm256_cmp_pd(p, plow, _CMP_LT_OQ),
                     _mm256_cmp_pd(p, phigh, _CMP_GT_OQ));
    const int tail_mask = _mm256_movemask_pd(tails);
    if (tail_mask != 0) {
      alignas(32) double pbuf[4];
      alignas(32) double rbuf[4];
      _mm256_store_pd(pbuf, p);
      _mm256_store_pd(rbuf, res);
      for (int lane = 0; lane < 4; ++lane)
        if ((tail_mask & (1 << lane)) != 0)
          rbuf[lane] = inverse_normal_cdf(pbuf[lane]);
      res = _mm256_load_pd(rbuf);
    }
    _mm256_storeu_pd(out.data() + i, res);
  }
  for (; i < n; ++i) {
    // Remainder: the exact scalar composition (CounterStream::at).
    const std::uint64_t h = hash_combine(prefix, base + i);
    out[i] = inverse_normal_cdf(uniform_from_hash(h));
  }
}

void margin_chain(std::span<const float> sums, const MarginChainParams& p,
                  std::span<double> zg, std::span<std::int32_t> flags) {
  const std::size_t n = sums.size();
  const double denom0 = p.cap_ratio + p.n_connected;
  const __m256d vgain = _mm256_set1_pd(p.gain);
  const __m256d vthr = _mm256_set1_pd(p.threshold);
  const __m256d vnd = _mm256_set1_pd(p.noise_denominator);
  const __m256d vpen = _mm256_set1_pd(p.z_penalty);
  const __m256d vshift = _mm256_set1_pd(p.vendor_shift);
  const __m256d vg = _mm256_set1_pd(p.g);
  constexpr std::size_t kChunk = 64;
  alignas(32) double pow_buf[kChunk];
  for (std::size_t start = 0; start < n; start += kChunk) {
    const std::size_t limit = std::min(kChunk, n - start);
    // Pass 1 (scalar): tie classification and the std::pow transcendental
    // — libm keeps both tiers bit-identical.
    bool any_tie = false;
    for (std::size_t j = 0; j < limit; ++j) {
      const double sum = sums[start + j];
      if (std::abs(sum) < 1e-9) {
        flags[start + j] = kClassTie;
        pow_buf[j] = 0.0;
        any_tie = true;
        continue;
      }
      flags[start + j] = sum > 0.0 ? kClassMajorityOne : 0;
      pow_buf[j] = std::pow(std::abs(sum) / denom0, p.margin_exponent);
    }
    // Pass 2 (vector): the surrounding multiply/subtract/divide chain in
    // the exact scalar operation order.
    std::size_t j = 0;
    for (; j + 4 <= limit; j += 4) {
      const __m256d x =
          _mm256_mul_pd(vgain, _mm256_load_pd(pow_buf + j));
      const __m256d z = _mm256_add_pd(
          _mm256_sub_pd(_mm256_div_pd(_mm256_sub_pd(x, vthr), vnd), vpen),
          vshift);
      _mm256_storeu_pd(zg.data() + start + j, _mm256_div_pd(z, vg));
    }
    for (; j < limit; ++j) {
      const double x = p.gain * pow_buf[j];
      const double z = (x - p.threshold) / p.noise_denominator - p.z_penalty +
                       p.vendor_shift;
      zg[start + j] = z / p.g;
    }
    if (any_tie) {
      for (std::size_t t = 0; t < limit; ++t)
        if ((flags[start + t] & kClassTie) != 0) zg[start + t] = 0.0;
    }
  }
}

std::size_t class_resolve(std::span<const std::int32_t> class_of,
                          std::span<const double> zg,
                          std::span<const std::int32_t> flags,
                          std::span<const float> zetas,
                          std::span<const float> polarities, BitVec& resolved,
                          BitVec& stable, BitVec& ties) {
  const std::size_t n = class_of.size();
  const __m128 zero_ps = _mm_setzero_ps();
  std::size_t n_ties = 0;
  std::size_t c = 0;
  std::size_t wi = 0;
  for (; n - c >= kWordBits; ++wi, c += kWordBits) {
    std::uint64_t resolved_word = 0;
    std::uint64_t stable_word = 0;
    std::uint64_t tie_word = 0;
    for (int g4 = 0; g4 < 16; ++g4) {
      const std::size_t base = c + 4 * static_cast<std::size_t>(g4);
      const __m128i idx = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(class_of.data() + base));
      // Gathered class table: zg (double) and flags per column.
      const __m256d zg4 = _mm256_i32gather_pd(zg.data(), idx, 8);
      const __m128i fl4 = _mm_i32gather_epi32(flags.data(), idx, 4);
      // Same compare as scalar: double zg against the float zeta widened
      // to double.
      const __m256d zeta4 =
          _mm256_cvtps_pd(_mm_loadu_ps(zetas.data() + base));
      const auto gt = static_cast<unsigned>(
          _mm256_movemask_pd(_mm256_cmp_pd(zg4, zeta4, _CMP_GT_OQ)));
      // Flag bits to lane masks: shift the wanted bit into the sign.
      const auto tie = static_cast<unsigned>(
          _mm_movemask_ps(_mm_castsi128_ps(_mm_slli_epi32(fl4, 31))));
      const auto maj = static_cast<unsigned>(
          _mm_movemask_ps(_mm_castsi128_ps(_mm_slli_epi32(fl4, 30))));
      const auto pol = static_cast<unsigned>(_mm_movemask_ps(_mm_cmp_ps(
          _mm_loadu_ps(polarities.data() + base), zero_ps, _CMP_GT_OQ)));
      const unsigned resolved_bits =
          ((maj & gt) | (pol & ~gt)) & ~tie & 0xFu;
      const unsigned stable_bits = gt & ~tie & 0xFu;
      const unsigned tie_bits = tie & 0xFu;
      const int shift = 4 * g4;
      resolved_word |= static_cast<std::uint64_t>(resolved_bits) << shift;
      stable_word |= static_cast<std::uint64_t>(stable_bits) << shift;
      tie_word |= static_cast<std::uint64_t>(tie_bits) << shift;
    }
    resolved.set_word(wi, resolved_word);
    stable.set_word(wi, stable_word);
    ties.set_word(wi, tie_word);
    n_ties += static_cast<std::size_t>(std::popcount(tie_word));
  }
  if (c < n) {
    // Boundary word: the exact scalar branch sequence.
    std::uint64_t resolved_word = 0;
    std::uint64_t stable_word = 0;
    std::uint64_t tie_word = 0;
    for (std::size_t b = 0; c < n; ++b, ++c) {
      const auto cls = static_cast<std::size_t>(class_of[c]);
      if ((flags[cls] & kClassTie) != 0) {
        tie_word |= 1ULL << b;
        ++n_ties;
      } else if (zg[cls] > zetas[c]) {
        resolved_word |=
            static_cast<std::uint64_t>((flags[cls] & kClassMajorityOne) != 0)
            << b;
        stable_word |= 1ULL << b;
      } else {
        resolved_word |= static_cast<std::uint64_t>(polarities[c] > 0.0f) << b;
      }
    }
    resolved.set_word(wi, resolved_word);
    stable.set_word(wi, stable_word);
    ties.set_word(wi, tie_word);
  }
  return n_ties;
}

void hashed_uniform_fill(std::uint64_t prefix, std::span<float> out) {
  constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;
  // Same hoisted hash_combine as hashed_normal_fill, minus the inverse
  // CDF: the result is the raw uniform, rounded to float.
  const std::uint64_t c0 = kGolden + (prefix << 6) + (prefix >> 2);
  const __m256i vprefix =
      _mm256_set1_epi64x(static_cast<long long>(prefix));
  const __m256i vc0 = _mm256_set1_epi64x(static_cast<long long>(c0));
  const __m256i vgolden =
      _mm256_set1_epi64x(static_cast<long long>(kGolden));
  const __m256d half = _mm256_set1_pd(0.5);
  const __m256d ulp53 = _mm256_set1_pd(0x1.0p-53);
  const std::size_t n = out.size();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i idx = _mm256_setr_epi64x(
        static_cast<long long>(i), static_cast<long long>(i + 1),
        static_cast<long long>(i + 2), static_cast<long long>(i + 3));
    __m256i s =
        _mm256_xor_si256(vprefix, _mm256_add_epi64(idx, vc0));
    s = _mm256_add_epi64(s, vgolden);  // splitmix64's own increment.
    const __m256i h = splitmix_mix(s);
    const __m256d u = _mm256_mul_pd(
        _mm256_add_pd(u53_to_double(_mm256_srli_epi64(h, 11)), half),
        ulp53);
    _mm_storeu_ps(out.data() + i, _mm256_cvtpd_ps(u));
  }
  for (; i < n; ++i) {
    const std::uint64_t h = hash_combine(prefix, i);
    out[i] = static_cast<float>(
        (static_cast<double>(h >> 11) + 0.5) * 0x1.0p-53);
  }
}

}  // namespace simra::dram::kernels::avx2

#else  // !defined(__AVX2__)

#include <cstdlib>

namespace simra::dram::kernels::avx2 {

// Toolchain without AVX2: the dispatcher never resolves to this tier
// (compiled() gates avx2_supported()), so these bodies are unreachable.

bool compiled() noexcept { return false; }

void threshold_mask(std::span<const float>, float, BitVec&) { std::abort(); }
std::uint64_t compare_lt_word(const double*, std::size_t, double) {
  std::abort();
}
void offset_noise_mask(std::span<const float>, std::span<const double>,
                       double, BitVec&) {
  std::abort();
}
std::size_t lag8_full_words(const std::uint64_t*, std::size_t) {
  std::abort();
}
void column_counts_word(const std::uint64_t[6], std::uint8_t*) {
  std::abort();
}
void hashed_normal_fill(std::uint64_t, std::span<float>) { std::abort(); }
void hashed_uniform_fill(std::uint64_t, std::span<float>) { std::abort(); }
void counter_normal_fill(std::uint64_t, std::uint64_t, std::span<double>) {
  std::abort();
}
void margin_chain(std::span<const float>, const MarginChainParams&,
                  std::span<double>, std::span<std::int32_t>) {
  std::abort();
}
std::size_t class_resolve(std::span<const std::int32_t>,
                          std::span<const double>,
                          std::span<const std::int32_t>,
                          std::span<const float>, std::span<const float>,
                          BitVec&, BitVec&, BitVec&) {
  std::abort();
}

}  // namespace simra::dram::kernels::avx2

#endif  // defined(__AVX2__)
