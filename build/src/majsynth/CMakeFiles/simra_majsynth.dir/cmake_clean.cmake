file(REMOVE_RECURSE
  "CMakeFiles/simra_majsynth.dir/cost_model.cpp.o"
  "CMakeFiles/simra_majsynth.dir/cost_model.cpp.o.d"
  "CMakeFiles/simra_majsynth.dir/dram_executor.cpp.o"
  "CMakeFiles/simra_majsynth.dir/dram_executor.cpp.o.d"
  "CMakeFiles/simra_majsynth.dir/microbench.cpp.o"
  "CMakeFiles/simra_majsynth.dir/microbench.cpp.o.d"
  "CMakeFiles/simra_majsynth.dir/network.cpp.o"
  "CMakeFiles/simra_majsynth.dir/network.cpp.o.d"
  "CMakeFiles/simra_majsynth.dir/synth.cpp.o"
  "CMakeFiles/simra_majsynth.dir/synth.cpp.o.d"
  "libsimra_majsynth.a"
  "libsimra_majsynth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simra_majsynth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
