#include "bender/assembler.hpp"

#include <cctype>
#include <map>
#include <sstream>
#include <stdexcept>

namespace simra::bender {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw std::invalid_argument("line " + std::to_string(line) + ": " + message);
}

/// key=value operand list.
std::map<std::string, std::string> parse_operands(std::istringstream& in,
                                                  std::size_t line) {
  std::map<std::string, std::string> out;
  std::string token;
  while (in >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= token.size())
      fail(line, "malformed operand '" + token + "' (expected key=value)");
    out[token.substr(0, eq)] = token.substr(eq + 1);
  }
  return out;
}

std::uint64_t parse_number(const std::string& value, std::size_t line) {
  try {
    std::size_t used = 0;
    const std::uint64_t parsed = std::stoull(value, &used, 0);
    if (used != value.size()) throw std::invalid_argument(value);
    return parsed;
  } catch (const std::exception&) {
    fail(line, "bad number '" + value + "'");
  }
}

std::uint64_t require(const std::map<std::string, std::string>& operands,
                      const std::string& key, std::size_t line) {
  const auto it = operands.find(key);
  if (it == operands.end()) fail(line, "missing operand '" + key + "'");
  return parse_number(it->second, line);
}

int hex_digit(char c, std::size_t line) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  fail(line, std::string("bad hex digit '") + c + "'");
}

BitVec parse_payload(const std::map<std::string, std::string>& operands,
                     std::size_t line) {
  const auto hex = operands.find("hex");
  if (hex != operands.end()) {
    const std::string& digits = hex->second;
    BitVec data(digits.size() * 4);
    for (std::size_t i = 0; i < digits.size(); ++i) {
      const int nibble = hex_digit(digits[i], line);
      for (int b = 0; b < 4; ++b)
        if ((nibble >> b) & 1) data.set(i * 4 + b, true);
    }
    return data;
  }
  const auto pattern = operands.find("pattern");
  if (pattern != operands.end()) {
    const auto bits = require(operands, "bits", line);
    BitVec data(bits);
    data.fill_byte(static_cast<std::uint8_t>(
        parse_number(pattern->second, line) & 0xFF));
    return data;
  }
  fail(line, "WR needs a 'hex=' or 'pattern= bits=' payload");
}

std::string payload_to_hex(const BitVec& data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve((data.size() + 3) / 4);
  for (std::size_t i = 0; i < data.size(); i += 4) {
    int nibble = 0;
    for (std::size_t b = 0; b < 4 && i + b < data.size(); ++b)
      if (data.get(i + b)) nibble |= 1 << b;
    out.push_back(kDigits[nibble]);
  }
  return out;
}

}  // namespace

Program Assembler::assemble(const std::string& text) {
  Program program;
  std::istringstream lines(text);
  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(lines, raw)) {
    ++line_no;
    const std::size_t comment = raw.find('#');
    if (comment != std::string::npos) raw.erase(comment);
    std::istringstream in(raw);
    std::string mnemonic;
    if (!(in >> mnemonic)) continue;  // blank line.

    if (mnemonic == "EXPECT") {
      // Declares an intended timing violation, e.g.
      //   EXPECT tRAS bank=0 label=apa
      std::string rule_token;
      if (!(in >> rule_token)) fail(line_no, "EXPECT needs a rule name");
      const auto rule = verify::rule_from_name(rule_token);
      if (!rule) fail(line_no, "unknown timing rule '" + rule_token + "'");
      const auto operands = parse_operands(in, line_no);
      verify::Intent intent;
      intent.rule = *rule;
      const auto bank = operands.find("bank");
      if (bank != operands.end())
        intent.bank = static_cast<int>(parse_number(bank->second, line_no));
      const auto label = operands.find("label");
      if (label != operands.end()) intent.label = label->second;
      program.expect(std::move(intent));
      continue;
    }

    if (mnemonic == "DELAY" || mnemonic == "WAIT") {
      double ns = 0.0;
      if (!(in >> ns)) fail(line_no, mnemonic + " needs a duration in ns");
      try {
        if (mnemonic == "DELAY")
          program.delay(Nanoseconds{ns});
        else
          program.delay_at_least(Nanoseconds{ns});
      } catch (const std::exception& e) {
        fail(line_no, e.what());
      }
      continue;
    }

    const auto operands = parse_operands(in, line_no);
    const auto has_ap = [&] {
      const auto it = operands.find("ap");
      return it != operands.end() && parse_number(it->second, line_no) != 0;
    };
    if (mnemonic == "ACT") {
      program.act(static_cast<dram::BankId>(require(operands, "bank", line_no)),
                  static_cast<dram::RowAddr>(require(operands, "row", line_no)));
    } else if (mnemonic == "PRE") {
      program.pre(static_cast<dram::BankId>(require(operands, "bank", line_no)));
    } else if (mnemonic == "PREA") {
      program.prea();
    } else if (mnemonic == "RD") {
      program.rd(static_cast<dram::BankId>(require(operands, "bank", line_no)),
                 static_cast<dram::ColAddr>(require(operands, "col", line_no)),
                 require(operands, "bits", line_no), has_ap());
    } else if (mnemonic == "WR") {
      program.wr(static_cast<dram::BankId>(require(operands, "bank", line_no)),
                 static_cast<dram::ColAddr>(require(operands, "col", line_no)),
                 parse_payload(operands, line_no), has_ap());
    } else if (mnemonic == "REF") {
      program.ref();
    } else {
      fail(line_no, "unknown mnemonic '" + mnemonic + "'");
    }
  }
  return program;
}

std::string Assembler::disassemble(const Program& program) {
  std::ostringstream out;
  for (const verify::Intent& intent : program.intents()) {
    out << "EXPECT " << verify::rule_name(intent.rule);
    if (intent.bank != verify::kAnyBank) out << " bank=" << intent.bank;
    if (!intent.label.empty()) out << " label=" << intent.label;
    out << "\n";
  }
  std::uint64_t prev_slot = 0;
  bool first = true;
  for (const TimedCommand& cmd : program.commands()) {
    if (first) {
      // Preserve an initial idle offset exactly.
      if (cmd.slot > 0)
        out << "DELAY " << static_cast<double>(cmd.slot) * kSlotNs << "\n";
    } else {
      const std::uint64_t gap = cmd.slot - prev_slot;
      if (gap > 1)
        out << "DELAY " << static_cast<double>(gap) * kSlotNs << "\n";
    }
    switch (cmd.kind) {
      case CommandKind::kAct:
        out << "ACT bank=" << static_cast<int>(cmd.bank) << " row=" << cmd.row;
        break;
      case CommandKind::kPre:
        if (cmd.a10) {
          out << "PREA";
        } else {
          out << "PRE bank=" << static_cast<int>(cmd.bank);
        }
        break;
      case CommandKind::kRd:
        out << "RD bank=" << static_cast<int>(cmd.bank) << " col=" << cmd.col
            << " bits=" << cmd.nbits;
        if (cmd.a10) out << " ap=1";
        break;
      case CommandKind::kWr:
        out << "WR bank=" << static_cast<int>(cmd.bank) << " col=" << cmd.col
            << " hex=" << payload_to_hex(cmd.data);
        if (cmd.a10) out << " ap=1";
        break;
      case CommandKind::kRef:
        out << "REF";
        break;
    }
    out << "\n";
    prev_slot = cmd.slot;
    first = false;
  }
  return out.str();
}

}  // namespace simra::bender
