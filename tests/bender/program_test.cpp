#include "bender/program.hpp"

#include <gtest/gtest.h>

namespace simra::bender {
namespace {

using simra::Nanoseconds;

TEST(Program, CommandsLandOnCursorSlots) {
  Program p;
  p.act(0, 5).delay(Nanoseconds{3.0}).pre(0).delay(Nanoseconds{1.5}).act(0, 9);
  const auto& cmds = p.commands();
  ASSERT_EQ(cmds.size(), 3u);
  EXPECT_EQ(cmds[0].slot, 0u);
  EXPECT_EQ(cmds[1].slot, 2u);  // 3 ns = 2 slots.
  EXPECT_EQ(cmds[2].slot, 3u);  // +1.5 ns.
  EXPECT_DOUBLE_EQ(cmds[1].time_ns(), 3.0);
  EXPECT_DOUBLE_EQ(cmds[2].time_ns(), 4.5);
}

TEST(Program, BackToBackCommandsAutoAdvanceOneSlot) {
  Program p;
  p.act(0, 1);
  p.act(1, 2);  // no explicit delay: next slot.
  EXPECT_EQ(p.commands()[1].slot, 1u);
}

TEST(Program, DelayMustBeSlotMultiple) {
  Program p;
  EXPECT_THROW(p.delay(Nanoseconds{2.0}), std::invalid_argument);
  EXPECT_THROW(p.delay(Nanoseconds{0.0}), std::invalid_argument);
  EXPECT_THROW(p.delay(Nanoseconds{-1.5}), std::invalid_argument);
  EXPECT_NO_THROW(p.delay(Nanoseconds{36.0}));
}

TEST(Program, DelayAtLeastRoundsUp) {
  Program p;
  p.act(0, 0).delay_at_least(Nanoseconds{13.5}).pre(0);
  EXPECT_EQ(p.commands()[1].slot, 9u);  // ceil(13.5 / 1.5) = 9.
  Program q;
  q.act(0, 0).delay_at_least(Nanoseconds{13.6}).pre(0);
  EXPECT_EQ(q.commands()[1].slot, 10u);
}

TEST(Program, DelayAtLeastMeasuresFromTheLastCommand) {
  // The rounding rule: the *next command* lands ceil(delay / 1.5) slots
  // after the last command. An unoccupied cursor partway through the gap
  // counts towards it, so an exact slot multiple never over-advances.
  Program p;
  p.act(0, 0).delay(Nanoseconds{1.5}).delay_at_least(Nanoseconds{3.0}).pre(0);
  EXPECT_EQ(p.commands()[1].slot, 2u);  // 2 slots after the ACT, not 3.

  // A cursor already past the requested gap stays put.
  Program q;
  q.act(0, 0).delay(Nanoseconds{9.0}).delay_at_least(Nanoseconds{3.0}).pre(0);
  EXPECT_EQ(q.commands()[1].slot, 6u);

  // Chained delay_at_least calls overlap rather than accumulate: the
  // larger of tCCD and tWR wins, as both are measured from the last WR.
  Program r;
  r.wr(0, 0, BitVec(8))
      .delay_at_least(Nanoseconds{5.0})    // 4 slots.
      .delay_at_least(Nanoseconds{15.0})   // 10 slots from the WR.
      .pre(0);
  EXPECT_EQ(r.commands()[1].slot, 10u);

  // On an empty program the gap is measured from slot 0.
  Program s;
  s.delay_at_least(Nanoseconds{3.0}).act(0, 0);
  EXPECT_EQ(s.commands()[0].slot, 2u);
}

TEST(Program, PadAfterLastEnforcesGapFromNamedCommand) {
  Program p;
  p.act(0, 0)
      .delay_at_least(Nanoseconds{13.5})  // WR at slot 9.
      .wr(0, 0, BitVec(8))
      .delay_at_least(Nanoseconds{15.0})  // cursor at slot 19.
      .pad_after_last(CommandKind::kAct, Nanoseconds{36.0})
      .pre(0);
  EXPECT_EQ(p.commands()[2].slot, 24u);  // tRAS from the ACT, not the WR.

  // Already-satisfied gaps are a no-op.
  Program q;
  q.act(0, 0).delay(Nanoseconds{60.0})
      .pad_after_last(CommandKind::kAct, Nanoseconds{36.0}).pre(0);
  EXPECT_EQ(q.commands()[1].slot, 40u);

  Program r;
  EXPECT_THROW(r.pad_after_last(CommandKind::kAct, Nanoseconds{36.0}),
               std::logic_error);
}

TEST(Program, NamesIntentsAndPrea) {
  Program p;
  p.set_name("demo").expect(verify::apa_intents(3));
  p.act(3, 1).delay(Nanoseconds{3.0}).prea();
  EXPECT_EQ(p.name(), "demo");
  ASSERT_EQ(p.intents().size(), 2u);
  EXPECT_EQ(p.intents()[0].bank, 3);
  EXPECT_TRUE(p.commands()[1].a10);
  EXPECT_EQ(p.commands()[1].kind, CommandKind::kPre);
  EXPECT_NE(p.to_string().find("PRE all"), std::string::npos);
}

TEST(Program, DurationCoversLastSlot) {
  Program p;
  EXPECT_DOUBLE_EQ(p.duration_ns(), 0.0);
  p.act(0, 0);
  EXPECT_DOUBLE_EQ(p.duration_ns(), 1.5);
  p.delay(Nanoseconds{3.0}).pre(0);
  EXPECT_DOUBLE_EQ(p.duration_ns(), 4.5);
}

TEST(Program, PayloadCommands) {
  Program p;
  BitVec data(16);
  data.fill_byte(0xFF);
  p.wr(2, 5, data).delay(Nanoseconds{1.5}).rd(2, 5, 16).ref();
  const auto& cmds = p.commands();
  EXPECT_EQ(cmds[0].kind, CommandKind::kWr);
  EXPECT_EQ(cmds[0].bank, 2);
  EXPECT_EQ(cmds[0].col, 5u);
  EXPECT_EQ(cmds[0].data.popcount(), 16u);
  EXPECT_EQ(cmds[1].kind, CommandKind::kRd);
  EXPECT_EQ(cmds[1].nbits, 16u);
  EXPECT_EQ(cmds[2].kind, CommandKind::kRef);
}

TEST(Program, ListingContainsTimesAndMnemonics) {
  Program p;
  p.act(1, 42).delay(Nanoseconds{3.0}).pre(1);
  const std::string listing = p.to_string();
  EXPECT_NE(listing.find("ACT"), std::string::npos);
  EXPECT_NE(listing.find("row=42"), std::string::npos);
  EXPECT_NE(listing.find("3ns\tPRE"), std::string::npos);
}

TEST(CommandKind, Names) {
  EXPECT_EQ(to_string(CommandKind::kAct), "ACT");
  EXPECT_EQ(to_string(CommandKind::kRef), "REF");
}

TEST(Program, AppendKeepsRelativeSlotsAndCarriesIntents) {
  Program a;
  a.act(0, 1).delay(Nanoseconds{3.0}).pre(0);  // slots 0, 2 (cursor occupied).

  Program b;
  b.expect(verify::apa_intents(4));
  b.act(0, 2).delay(Nanoseconds{1.5}).act(0, 3);  // slots 0, 1.

  a.append(b);
  const auto& cmds = a.commands();
  ASSERT_EQ(cmds.size(), 4u);
  // The occupied cursor advances one slot before the splice, so b lands
  // at base slot 3 with its 1-slot internal gap intact.
  EXPECT_EQ(cmds[2].slot, 3u);
  EXPECT_EQ(cmds[3].slot, 4u);
  EXPECT_EQ(cmds[3].row, 3u);
  // b's intents ride along so the fused program verifies like its parts.
  EXPECT_EQ(a.intents().size(), verify::apa_intents(4).size());
  // Cursor lands on b's last command: one more append continues from it.
  EXPECT_DOUBLE_EQ(a.duration_ns(), 7.5);
}

TEST(Program, AppendIntoEmptyProgramIsIdentity) {
  Program b;
  b.act(1, 7).delay(Nanoseconds{3.0}).pre(1);

  Program fused;
  fused.append(b);
  ASSERT_EQ(fused.commands().size(), 2u);
  EXPECT_EQ(fused.commands()[0].slot, 0u);
  EXPECT_EQ(fused.commands()[1].slot, 2u);
  EXPECT_DOUBLE_EQ(fused.duration_ns(), b.duration_ns());
}

TEST(Program, AppendRespectsCallerInsertedSpacing) {
  Program a;
  a.act(0, 1);
  Program b;
  b.act(0, 2);

  a.delay_at_least(Nanoseconds{6.0}).append(b);
  ASSERT_EQ(a.commands().size(), 2u);
  EXPECT_EQ(a.commands()[1].slot, 4u);  // 6 ns = 4 slots after the ACT.
}

}  // namespace
}  // namespace simra::bender
