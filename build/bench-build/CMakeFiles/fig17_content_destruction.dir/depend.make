# Empty dependencies file for fig17_content_destruction.
# This may be replaced when dependencies are built.
