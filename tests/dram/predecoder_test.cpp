#include "dram/predecoder.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.hpp"

namespace simra::dram {
namespace {

TEST(PredecoderLayout, SupportedSubarraySizes) {
  EXPECT_EQ(PredecoderLayout::for_subarray_rows(512).rows(), 512u);
  EXPECT_EQ(PredecoderLayout::for_subarray_rows(640).rows(), 640u);
  EXPECT_EQ(PredecoderLayout::for_subarray_rows(1024).rows(), 1024u);
  EXPECT_THROW(PredecoderLayout::for_subarray_rows(256), std::invalid_argument);
}

TEST(PredecoderLayout, RejectsBadFanouts) {
  EXPECT_THROW(PredecoderLayout({}), std::invalid_argument);
  EXPECT_THROW(PredecoderLayout({2, 1}), std::invalid_argument);
}

TEST(PredecoderLayout, PaperExampleRowZeroAndSeven) {
  // §7.1 / Fig 14: row 0 asserts P_A0, P_B0; row 7 asserts P_A1, P_B3.
  const auto layout = PredecoderLayout::for_subarray_rows(512);
  const auto d0 = layout.digits(0);
  const auto d7 = layout.digits(7);
  EXPECT_EQ(d0[0], 0u);
  EXPECT_EQ(d0[1], 0u);
  EXPECT_EQ(d7[0], 1u);  // A = RA[0] = 1.
  EXPECT_EQ(d7[1], 3u);  // B = RA[1:2] = 3.
  // ACT 0 -> PRE -> ACT 7 activates rows {0, 1, 6, 7} (Fig 14).
  const auto group = layout.activation_group(0, 7);
  EXPECT_EQ(group, (std::vector<RowAddr>{0, 1, 6, 7}));
}

TEST(PredecoderLayout, PaperExample127To128Activates32Rows) {
  // §7.1: "to activate 32 rows ... e.g., ACT 127 -> PRE -> ACT 128".
  const auto layout = PredecoderLayout::for_subarray_rows(512);
  EXPECT_EQ(layout.differing_fields(127, 128), 5u);
  EXPECT_EQ(layout.activation_group(127, 128).size(), 32u);
}

class LayoutParamTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LayoutParamTest, DigitsComposeRoundtripAllRows) {
  const auto layout = PredecoderLayout::for_subarray_rows(GetParam());
  for (RowAddr row = 0; row < layout.rows(); ++row) {
    const auto digits = layout.digits(row);
    EXPECT_EQ(layout.compose(digits), row);
  }
}

TEST_P(LayoutParamTest, GroupPropertiesHoldForRandomPairs) {
  const auto layout = PredecoderLayout::for_subarray_rows(GetParam());
  Rng rng(99);
  for (int i = 0; i < 500; ++i) {
    const auto a = static_cast<RowAddr>(rng.below(layout.rows()));
    const auto b = static_cast<RowAddr>(rng.below(layout.rows()));
    const auto group = layout.activation_group(a, b);
    const unsigned k = layout.differing_fields(a, b);
    // Size is exactly 2^k.
    ASSERT_EQ(group.size(), std::size_t{1} << k);
    // Both APA targets are activated; rows are sorted and unique.
    ASSERT_TRUE(std::binary_search(group.begin(), group.end(), a));
    ASSERT_TRUE(std::binary_search(group.begin(), group.end(), b));
    ASSERT_TRUE(std::is_sorted(group.begin(), group.end()));
    ASSERT_EQ(std::set<RowAddr>(group.begin(), group.end()).size(),
              group.size());
    // Symmetry: the group does not depend on ACT order.
    ASSERT_EQ(group, layout.activation_group(b, a));
  }
}

TEST_P(LayoutParamTest, PartnerProducesRequestedGroupSize) {
  const auto layout = PredecoderLayout::for_subarray_rows(GetParam());
  Rng rng(7);
  for (std::size_t size = 2; size <= 32; size *= 2) {
    for (int i = 0; i < 50; ++i) {
      const auto first = static_cast<RowAddr>(rng.below(layout.rows()));
      const RowAddr partner = layout.partner_for_group_size(first, size);
      EXPECT_EQ(layout.activation_group(first, partner).size(), size);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSubarraySizes, LayoutParamTest,
                         ::testing::Values(512, 640, 1024));

TEST(PredecoderLayout, PartnerRejectsBadSizes) {
  const auto layout = PredecoderLayout::for_subarray_rows(512);
  EXPECT_THROW((void)layout.partner_for_group_size(0, 3),
               std::invalid_argument);
  EXPECT_THROW((void)layout.partner_for_group_size(0, 64),
               std::invalid_argument);
}

TEST(DecoderLatches, LatchAccumulatesUntilCleared) {
  const auto layout = PredecoderLayout::for_subarray_rows(512);
  DecoderLatches latches(&layout);
  EXPECT_FALSE(latches.any_latched());
  EXPECT_TRUE(latches.asserted_rows().empty());

  latches.latch(0);
  EXPECT_EQ(latches.asserted_rows(), (std::vector<RowAddr>{0}));
  EXPECT_EQ(latches.asserted_count(), 1u);

  latches.latch(7);
  EXPECT_EQ(latches.asserted_rows(), (std::vector<RowAddr>{0, 1, 6, 7}));
  EXPECT_EQ(latches.asserted_count(), 4u);

  latches.clear();
  EXPECT_FALSE(latches.any_latched());
  EXPECT_EQ(latches.asserted_count(), 0u);
}

TEST(DecoderLatches, MatchesActivationGroupForPairs) {
  const auto layout = PredecoderLayout::for_subarray_rows(1024);
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const auto a = static_cast<RowAddr>(rng.below(layout.rows()));
    const auto b = static_cast<RowAddr>(rng.below(layout.rows()));
    DecoderLatches latches(&layout);
    latches.latch(a);
    latches.latch(b);
    EXPECT_EQ(latches.asserted_rows(), layout.activation_group(a, b));
  }
}

TEST(DecoderLatches, ThreeLatchedAddressesFormCartesianProduct) {
  // Latching a third address grows the set to the full cartesian product —
  // the reason chained APAs can open even more rows.
  const auto layout = PredecoderLayout::for_subarray_rows(512);
  DecoderLatches latches(&layout);
  latches.latch(0);
  latches.latch(1);
  latches.latch(2);  // digits A:{0,1}, B:{0,1}.
  EXPECT_EQ(latches.asserted_count(), 4u);
}

}  // namespace
}  // namespace simra::dram
