#include "dram/scrambler.hpp"

#include <stdexcept>

namespace simra::dram {

std::string to_string(RowScrambler::Kind kind) {
  switch (kind) {
    case RowScrambler::Kind::kIdentity:
      return "identity";
    case RowScrambler::Kind::kBitReversal:
      return "bit-reversal";
    case RowScrambler::Kind::kXorFold:
      return "xor-fold";
    case RowScrambler::Kind::kBlockSwap:
      return "block-swap";
  }
  return "?";
}

RowScrambler::RowScrambler(Kind kind, unsigned local_bits, unsigned parameter)
    : kind_(kind), local_bits_(local_bits), parameter_(parameter) {
  if (local_bits_ == 0 || local_bits_ > 16)
    throw std::invalid_argument("local bit count out of range");
  if (kind_ == Kind::kXorFold && (parameter_ == 0 || parameter_ >= local_bits_))
    throw std::invalid_argument("xor-fold distance must be in [1, bits)");
  if (kind_ == Kind::kBlockSwap &&
      (parameter_ == 0 || parameter_ > local_bits_))
    throw std::invalid_argument("block-swap size must be in [1, bits]");
}

RowAddr RowScrambler::map_local(RowAddr local, bool inverse) const {
  const RowAddr mask = (RowAddr{1} << local_bits_) - 1;
  switch (kind_) {
    case Kind::kIdentity:
      return local;
    case Kind::kBitReversal: {
      RowAddr out = 0;
      for (unsigned b = 0; b < local_bits_; ++b)
        if ((local >> b) & 1u) out |= RowAddr{1} << (local_bits_ - 1 - b);
      return out;  // self-inverse.
    }
    case Kind::kXorFold: {
      // forward: out_b = local_b ^ local_(b+k); the top k bits pass
      // through unchanged, which makes the map invertible by resolving
      // bits from the top down.
      if (!inverse) {
        RowAddr out = local;
        for (unsigned b = 0; b + parameter_ < local_bits_; ++b) {
          const RowAddr src = (local >> (b + parameter_)) & 1u;
          out ^= src << b;
        }
        return out & mask;
      }
      RowAddr out = local;  // top k bits already correct.
      for (unsigned b = local_bits_ - parameter_; b-- > 0;) {
        const RowAddr src = (out >> (b + parameter_)) & 1u;
        out = (out & ~(RowAddr{1} << b)) |
              ((((local >> b) & 1u) ^ src) << b);
      }
      return out & mask;
    }
    case Kind::kBlockSwap: {
      // Swap the two halves of every 2^parameter_-row block: XOR the top
      // bit of the block index — an involution.
      const RowAddr flip = RowAddr{1} << (parameter_ - 1);
      return (local ^ flip) & mask;
    }
  }
  return local;
}

RowAddr RowScrambler::to_internal(RowAddr local) const {
  if (kind_ == Kind::kIdentity) return local;  // any subarray size.
  if (local >> local_bits_)
    throw std::out_of_range("local row exceeds scrambler domain");
  return map_local(local, /*inverse=*/false);
}

RowAddr RowScrambler::to_logical(RowAddr internal) const {
  if (kind_ == Kind::kIdentity) return internal;
  if (internal >> local_bits_)
    throw std::out_of_range("internal row exceeds scrambler domain");
  return map_local(internal, /*inverse=*/true);
}

std::string RowScrambler::describe() const {
  return to_string(kind_) + "(bits=" + std::to_string(local_bits_) +
         ", k=" + std::to_string(parameter_) + ")";
}

}  // namespace simra::dram
