#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bitvec.hpp"
#include "common/units.hpp"
#include "dram/types.hpp"
#include "verify/intent.hpp"

namespace simra::bender {

/// The testbed can issue one DRAM command per FPGA command slot; slots are
/// 1.5 ns apart (the DRAM Bender limitation discussed in §9 Limitation 2 —
/// finer-grained control, e.g. 0.1 ns, is not possible).
inline constexpr double kSlotNs = 1.5;

enum class CommandKind : std::uint8_t {
  kAct,
  kPre,
  kWr,
  kRd,
  kRef,
};

std::string to_string(CommandKind kind);

/// One DRAM command scheduled at an absolute slot index within a program.
struct TimedCommand {
  std::uint64_t slot = 0;
  CommandKind kind = CommandKind::kAct;
  dram::BankId bank = 0;
  dram::RowAddr row = 0;
  dram::ColAddr col = 0;       ///< bit offset for WR/RD.
  std::size_t nbits = 0;       ///< read length for RD.
  BitVec data;                 ///< payload for WR.
  /// A10 high: PRE becomes precharge-all (PREA), RD/WR auto-precharge.
  bool a10 = false;

  double time_ns() const { return static_cast<double>(slot) * kSlotNs; }
};

/// A DRAM Bender-style command program: a time-annotated command sequence
/// built with an explicit cursor. Delays between commands are expressed in
/// nanoseconds and must be positive multiples of the 1.5 ns slot.
///
/// Example — the APA sequence of §3.2 with t1 = 3 ns, t2 = 3 ns:
///
///   Program p;
///   p.act(bank, row_first).delay(Nanoseconds{3})
///    .pre(bank).delay(Nanoseconds{3})
///    .act(bank, row_second);
class Program {
 public:
  Program& act(dram::BankId bank, dram::RowAddr row);
  Program& pre(dram::BankId bank);
  /// Precharge-all (A10 high): closes every open bank in one command.
  Program& prea();
  /// Writes `data` at bit offset `col` of the open row; with
  /// `auto_precharge` (A10 high, WRA) the bank closes after the access.
  Program& wr(dram::BankId bank, dram::ColAddr col, BitVec data,
              bool auto_precharge = false);
  /// Reads `nbits` at bit offset `col`; results are collected by the
  /// executor in command order. `auto_precharge` as for wr().
  Program& rd(dram::BankId bank, dram::ColAddr col, std::size_t nbits,
              bool auto_precharge = false);
  Program& ref();

  /// Advances the cursor. `delay` must be a positive multiple of 1.5 ns;
  /// anything else throws (the hardware cannot schedule it).
  Program& delay(Nanoseconds delay);

  /// Advances the cursor so the *next* command lands at least the given
  /// delay (rounded up to the next slot) after the last command. Unlike
  /// delay(), exact slot alignment is irrelevant; unlike naive cursor
  /// arithmetic, an unoccupied cursor already partway through the gap
  /// counts towards it, so an exact slot multiple never over-advances.
  Program& delay_at_least(Nanoseconds delay);

  /// Ensures the next command lands at least `delay` after the most recent
  /// command of `kind` (rounded up to slots); no-ops when the gap is
  /// already satisfied, throws std::logic_error when no such command
  /// exists. Use to respect nominal timing measured from a specific
  /// earlier command, e.g. `.pad_after_last(CommandKind::kAct, t.tRAS)`
  /// before a PRE.
  Program& pad_after_last(CommandKind kind, Nanoseconds delay);

  /// Appends another program's commands after this one's cursor: every
  /// appended command keeps its relative slot offset, declared intents
  /// carry over, and the cursor advances by the appended program's cursor
  /// extent. The caller is responsible for inter-program spacing (e.g.
  /// `delay_at_least(tRP)` / `pad_after_last(kAct, tFAW)` before the
  /// append) — append itself inserts no gap beyond slot alignment, which
  /// is what lets a batch scheduler fuse many per-op programs into one
  /// without perturbing any intra-op timing.
  Program& append(const Program& other);

  /// Declares an intended timing violation (see simra::verify): findings
  /// matching a declared intent are classified kIntended by the analyzer.
  Program& expect(verify::Intent intent);
  Program& expect(const std::vector<verify::Intent>& intents);

  /// Names the program for verify diagnostics ("fig3_apa", ...).
  Program& set_name(std::string name);

  const std::string& name() const noexcept { return name_; }
  const std::vector<verify::Intent>& intents() const noexcept { return intents_; }

  const std::vector<TimedCommand>& commands() const noexcept { return commands_; }
  std::uint64_t cursor_slot() const noexcept { return cursor_; }
  double duration_ns() const;
  bool empty() const noexcept { return commands_.empty(); }

  /// Total slot extent (the slot count duration_ns() is derived from):
  /// one past the last occupied slot when a command sits at the cursor.
  std::uint64_t extent_slots() const noexcept {
    return cursor_occupied_ ? cursor_ + 1 : cursor_;
  }

  /// Rebuilds a program carrying `original`'s name and intents but a
  /// re-scheduled command list and cursor extent. This is the
  /// constructor of the verify optimizer (slot compaction / dead-command
  /// elimination); it is header-inline because simra_verify may not
  /// reference simra_bender symbols (the link goes the other way).
  /// `commands` must be slot-sorted with strictly increasing slots below
  /// `extent_slots`; callers (the optimizer) guarantee this.
  static Program rescheduled(const Program& original,
                             std::vector<TimedCommand> commands,
                             std::uint64_t extent_slots) {
    Program p;
    p.name_ = original.name_;
    p.intents_ = original.intents_;
    p.commands_ = std::move(commands);
    p.cursor_ = extent_slots;
    p.cursor_occupied_ = false;
    return p;
  }

  /// Human-readable listing (debugging aid, mirrors the Bender trace view).
  std::string to_string() const;

 private:
  Program& push(TimedCommand cmd);

  std::vector<TimedCommand> commands_;
  std::vector<verify::Intent> intents_;
  std::string name_;
  std::uint64_t cursor_ = 0;
  bool cursor_occupied_ = false;  ///< a command sits at the cursor slot.
};

}  // namespace simra::bender
