#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace simra {
namespace {

TEST(BoxStats, EmptySampleIsZeroed) {
  const BoxStats box = box_stats({});
  EXPECT_EQ(box.count, 0u);
  EXPECT_EQ(box.mean, 0.0);
}

TEST(BoxStats, SingleValue) {
  const std::vector<double> v{3.5};
  const BoxStats box = box_stats(v);
  EXPECT_EQ(box.min, 3.5);
  EXPECT_EQ(box.max, 3.5);
  EXPECT_EQ(box.median, 3.5);
  EXPECT_EQ(box.q1, 3.5);
  EXPECT_EQ(box.q3, 3.5);
}

TEST(BoxStats, KnownQuartiles) {
  // numpy.percentile([1..5], [25, 50, 75]) == [2, 3, 4].
  const std::vector<double> v{5, 4, 3, 2, 1};
  const BoxStats box = box_stats(v);
  EXPECT_DOUBLE_EQ(box.min, 1.0);
  EXPECT_DOUBLE_EQ(box.q1, 2.0);
  EXPECT_DOUBLE_EQ(box.median, 3.0);
  EXPECT_DOUBLE_EQ(box.q3, 4.0);
  EXPECT_DOUBLE_EQ(box.max, 5.0);
  EXPECT_DOUBLE_EQ(box.mean, 3.0);
  EXPECT_DOUBLE_EQ(box.iqr(), 2.0);
}

TEST(BoxStats, InterpolatedQuartiles) {
  // numpy.percentile([1,2,3,4], 25) == 1.75.
  const std::vector<double> v{1, 2, 3, 4};
  const BoxStats box = box_stats(v);
  EXPECT_DOUBLE_EQ(box.q1, 1.75);
  EXPECT_DOUBLE_EQ(box.median, 2.5);
  EXPECT_DOUBLE_EQ(box.q3, 3.25);
}

TEST(SortedQuantile, Clamps) {
  const std::vector<double> v{1, 2, 3};
  EXPECT_DOUBLE_EQ(sorted_quantile(v, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(sorted_quantile(v, 1.5), 3.0);
}

TEST(SortedQuantile, Empty) { EXPECT_DOUBLE_EQ(sorted_quantile({}, 0.5), 0.0); }

TEST(MeanOf, Basic) {
  const std::vector<double> v{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean_of(v), 2.5);
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
}

TEST(RunningStats, MatchesBatch) {
  RunningStats rs;
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (double x : v) rs.add(x);
  EXPECT_EQ(rs.count(), v.size());
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_NEAR(rs.stddev(), 2.138, 1e-3);  // sample stddev.
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RunningStats, MergeEquivalentToSequential) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.37 - 3.0;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(SampleSet, CollectsAndSummarizes) {
  SampleSet s;
  EXPECT_TRUE(s.empty());
  for (int i = 1; i <= 5; ++i) s.add(i);
  EXPECT_EQ(s.size(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.box().median, 3.0);
}

TEST(SampleSet, MergeMatchesOneShotAccumulation) {
  // Splitting a value stream across sets and merging them in order must
  // reproduce the one-shot accumulation exactly: same value order, so
  // bit-identical mean and quartiles.
  const std::vector<double> values{0.31, 0.97, 0.02, 0.55, 0.75, 0.13, 0.89};
  SampleSet one_shot;
  for (double v : values) one_shot.add(v);

  SampleSet first, second, merged;
  for (std::size_t i = 0; i < values.size(); ++i)
    (i < 3 ? first : second).add(values[i]);
  merged.merge(first);
  merged.merge(second);

  EXPECT_EQ(merged.values(), one_shot.values());
  const BoxStats a = one_shot.box();
  const BoxStats b = merged.box();
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.q1, b.q1);
  EXPECT_EQ(a.median, b.median);
  EXPECT_EQ(a.q3, b.q3);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.count, b.count);
}

TEST(SampleSet, MergeWithEmptySets) {
  SampleSet s, empty;
  s.add(1.0);
  s.merge(empty);
  EXPECT_EQ(s.size(), 1u);
  empty.merge(s);
  EXPECT_EQ(empty.size(), 1u);
  EXPECT_DOUBLE_EQ(empty.values()[0], 1.0);
}

}  // namespace
}  // namespace simra
