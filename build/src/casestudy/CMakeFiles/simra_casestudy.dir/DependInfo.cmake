
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/casestudy/content_destruction.cpp" "src/casestudy/CMakeFiles/simra_casestudy.dir/content_destruction.cpp.o" "gcc" "src/casestudy/CMakeFiles/simra_casestudy.dir/content_destruction.cpp.o.d"
  "/root/repo/src/casestudy/data_movement.cpp" "src/casestudy/CMakeFiles/simra_casestudy.dir/data_movement.cpp.o" "gcc" "src/casestudy/CMakeFiles/simra_casestudy.dir/data_movement.cpp.o.d"
  "/root/repo/src/casestudy/tmr.cpp" "src/casestudy/CMakeFiles/simra_casestudy.dir/tmr.cpp.o" "gcc" "src/casestudy/CMakeFiles/simra_casestudy.dir/tmr.cpp.o.d"
  "/root/repo/src/casestudy/trng.cpp" "src/casestudy/CMakeFiles/simra_casestudy.dir/trng.cpp.o" "gcc" "src/casestudy/CMakeFiles/simra_casestudy.dir/trng.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pud/CMakeFiles/simra_pud.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/simra_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/bender/CMakeFiles/simra_bender.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/simra_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
