#pragma once

#include <cstdint>
#include <vector>

#include "bender/program.hpp"
#include "common/bitvec.hpp"
#include "dram/chip.hpp"
#include "dram/power_model.hpp"

namespace simra::bender {

/// Result of one program execution against one chip: the RD payloads in
/// command order, plus energy bookkeeping from the power model.
struct ExecutionResult {
  std::vector<BitVec> reads;
  double duration_ns = 0.0;
  double energy_pj = 0.0;

  double average_power_mw() const {
    return duration_ns > 0.0 ? energy_pj / duration_ns : 0.0;
  }
};

/// The FPGA-side program executor (the substitute for DRAM Bender's
/// hardware engine): replays a command program against a chip with
/// absolute nanosecond timestamps. The executor owns a monotonically
/// advancing clock, so successive programs see strictly increasing time —
/// matching a real testbed session.
class Executor {
 public:
  explicit Executor(dram::Chip* chip);

  ExecutionResult run(const Program& program);

  /// Inserts an idle gap (e.g. "wait out tRP before the next test").
  void idle(Nanoseconds gap);

  double clock_ns() const noexcept { return clock_ns_; }
  dram::Chip& chip() noexcept { return *chip_; }

 private:
  dram::Chip* chip_;
  double clock_ns_ = 0.0;
};

}  // namespace simra::bender
