#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/prof.hpp"

namespace simra::obs {

/// A settable point-in-time measurement (e.g. the measured tracing
/// overhead of a run). Stored as a CAS-updated double so concurrent
/// setters never tear.
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  void set(double value) noexcept {
    bits_.store(std::bit_cast<std::uint64_t>(value),
                std::memory_order_relaxed);
  }
  double value() const noexcept {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }
  const std::string& name() const noexcept { return name_; }

 private:
  std::string name_;
  std::atomic<std::uint64_t> bits_{std::bit_cast<std::uint64_t>(0.0)};
};

/// One concrete observation attached to a histogram bucket — the request
/// id that produced it plus the observed value. `id` 0 means "none" (the
/// serving layer's request ids start at 1).
struct Exemplar {
  std::uint64_t id = 0;
  double value = 0.0;
};

/// Fixed-bucket histogram: `bounds` are the inclusive upper edges of the
/// finite buckets (ascending), with one implicit +inf overflow bucket.
/// Observation is a binary search plus relaxed atomic increments, so
/// harness workers can observe concurrently; because bucket counts only
/// ever accumulate, the final tallies are independent of thread
/// interleaving.
class Histogram {
 public:
  Histogram(std::string name, std::vector<double> bounds);

  void observe(double value) noexcept;
  /// Count-weighted observation: `weight` identical observations in one
  /// update. Lets batched producers (e.g. the per-class margin chain,
  /// observing once per sum class with the class's column count) keep
  /// histogram totals equal to the per-column loop they replaced at a
  /// fraction of the atomic traffic.
  void observe(double value, std::uint64_t weight) noexcept;
  /// Merges a locally pre-bucketed batch: `bucket_counts` must have
  /// bounds()+1 entries (same edges, trailing overflow bucket), `sum` and
  /// `count` the batch totals. One atomic pass per batch instead of one
  /// per observation — the electrical margin chain accumulates a whole
  /// resolve call on the stack and merges here, so the shared counters
  /// leave the hot loop entirely.
  void merge(std::span<const std::uint64_t> bucket_counts, double sum,
             std::uint64_t count) noexcept;
  /// `observe(value)` plus an exemplar: the landing bucket remembers the
  /// (value, id) pair that is lexicographically largest — i.e. the worst
  /// observation it has seen, ties broken toward the higher id. The merge
  /// rule is commutative and idempotent, so the retained exemplars are a
  /// pure function of the observation *set*, not its order.
  void observe_exemplar(double value, std::uint64_t exemplar_id) noexcept;
  /// Retained exemplar of bucket `i` (id 0 when the bucket has none).
  Exemplar exemplar(std::size_t i) const noexcept;

  const std::string& name() const noexcept { return name_; }
  const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// Cumulative count of observations <= bounds()[i]; index bounds.size()
  /// is the total (the +inf bucket).
  std::uint64_t cumulative(std::size_t i) const noexcept;
  /// Per-bucket (non-cumulative) count.
  std::uint64_t bucket_count(std::size_t i) const noexcept {
    return counts_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept {
    return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
  }

  void reset() noexcept;

 private:
  std::string name_;
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;  ///< bounds+1 slots.
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{std::bit_cast<std::uint64_t>(0.0)};
  /// Per-bucket exemplar storage (bounds+1 slots each). The id/value pair
  /// is written by one logical writer (the serve scheduler); readers see
  /// relaxed loads, which is fine for reporting.
  std::unique_ptr<std::atomic<std::uint64_t>[]> exemplar_ids_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> exemplar_value_bits_;
};

/// Snapshot of one histogram for reporting.
struct HistogramStats {
  std::string name;
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  ///< per-bucket; bounds+1 entries.
  std::vector<Exemplar> exemplars;    ///< per-bucket; id 0 = none.
  std::uint64_t count = 0;
  double sum = 0.0;
};

struct GaugeStats {
  std::string name;
  double value = 0.0;
};

/// The process-wide labeled metrics registry: wall-clock/event counters
/// (the `simra::prof` surface now lives here — prof.hpp is a shim over
/// this registry), gauges, and fixed-bucket histograms. Instruments are
/// created on first use, never destroyed, and kept in registration order
/// for reporting. Lookup takes a mutex; the returned references are
/// stable, so call sites cache them (SIMRA_PROF_SCOPE's static local,
/// static locals at histogram sites) and steady-state updates are
/// lock-free.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  prof::Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` only matters on first registration; later lookups of the
  /// same name return the existing histogram unchanged.
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  std::vector<prof::KernelStats> counters_snapshot() const;
  std::vector<GaugeStats> gauges_snapshot() const;
  std::vector<HistogramStats> histograms_snapshot() const;

  /// Zeroes every instrument (names stay registered).
  void reset();

  /// Prometheus text exposition of the whole registry.
  std::string render_prometheus() const;

 private:
  MetricsRegistry() = default;

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<prof::Counter>> counters_;
  std::vector<std::unique_ptr<Gauge>> gauges_;
  std::vector<std::unique_ptr<Histogram>> histograms_;
};

}  // namespace simra::obs
