// Reproduces Fig 11: Multi-RowCopy data-pattern dependence (Obs. 16).
#include "bench_common.hpp"
#include "charz/figures.hpp"

int main() {
  using namespace simra;
  const charz::Plan plan = bench_common::announced_plan(
      "Fig 11: Multi-RowCopy success rate vs source data pattern");
  const charz::FigureData figure = bench_common::timed_figure(
      plan, "fig11_mrc_datapattern", charz::fig11_mrc_datapattern);
  bench_common::print_figure(figure);

  std::cout << "Paper reference (Obs. 16): copying all-1s to 31 rows is "
               "~0.79% below the other patterns.\n";
  const double ones = figure.mean_at({"all-1s", "31"});
  const double zeros = figure.mean_at({"all-0s", "31"});
  std::cout << "  measured all-1s vs all-0s @ 31 dests: "
            << Table::num((ones - zeros) * 100.0, 3) << "%\n";
  return 0;
}
