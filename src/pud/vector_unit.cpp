#include "pud/vector_unit.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/rng.hpp"

namespace simra::pud {

VectorUnit::VectorUnit(Engine* engine, dram::BankId bank, dram::SubarrayId sa,
                       Rng* rng, std::size_t group_rows)
    : engine_(engine), bank_(bank), sa_(sa) {
  if (engine_ == nullptr || rng == nullptr)
    throw std::invalid_argument("vector unit needs an engine and an rng");
  group_ = sample_group(engine_->layout(), group_rows, *rng);
  row_used_.assign(engine_->layout().rows(), false);
  for (dram::RowAddr r : group_.rows) row_used_[r] = true;

  zero_row_ = alloc_row();
  one_row_ = alloc_row();
  scratch_a_ = alloc_row();
  scratch_b_ = alloc_row();
  scratch_c_ = alloc_row();
  const std::size_t columns = engine_->chip().profile().geometry.columns;
  engine_->write_row(bank_, engine_->global_of(sa_, zero_row_),
                     BitVec(columns, false));
  engine_->write_row(bank_, engine_->global_of(sa_, one_row_),
                     BitVec(columns, true));
}

std::size_t VectorUnit::lanes() const {
  return engine_->chip().profile().geometry.columns;
}

dram::RowAddr VectorUnit::alloc_row() {
  for (dram::RowAddr r = 0; r < row_used_.size(); ++r) {
    if (!row_used_[r]) {
      row_used_[r] = true;
      return r;
    }
  }
  throw std::runtime_error("subarray exhausted: no free rows left");
}

VectorUnit::Vector VectorUnit::alloc(unsigned bits) {
  if (bits == 0 || bits > 32)
    throw std::invalid_argument("vector width must be 1..32 bits");
  Vector v;
  v.bit_rows.reserve(bits);
  for (unsigned b = 0; b < bits; ++b) v.bit_rows.push_back(alloc_row());
  return v;
}

void VectorUnit::store(const Vector& v,
                       std::span<const std::uint32_t> values) {
  if (values.empty()) throw std::invalid_argument("store needs values");
  const std::size_t columns = lanes();
  for (unsigned bit = 0; bit < v.bits(); ++bit) {
    BitVec row(columns);
    for (std::size_t lane = 0; lane < columns; ++lane)
      row.set(lane, (values[lane % values.size()] >> bit) & 1u);
    engine_->write_row(bank_, engine_->global_of(sa_, v.bit_rows[bit]), row);
  }
}

std::vector<std::uint32_t> VectorUnit::load(const Vector& v) {
  const std::size_t columns = lanes();
  std::vector<std::uint32_t> values(columns, 0);
  for (unsigned bit = 0; bit < v.bits(); ++bit) {
    const BitVec row =
        engine_->read_row(bank_, engine_->global_of(sa_, v.bit_rows[bit]));
    for (std::size_t lane = 0; lane < columns; ++lane)
      if (row.get(lane)) values[lane] |= 1u << bit;
  }
  return values;
}

dram::RowAddr VectorUnit::compute_maj(
    std::span<const dram::RowAddr> operands, dram::RowAddr dest) {
  (void)engine_->majx_from_rows(bank_, sa_, group_, operands);
  ++stats_.maj_ops;
  // The result sits in every group row; clone it out to the destination.
  engine_->rowclone(bank_, engine_->global_of(sa_, group_.row_first),
                    engine_->global_of(sa_, dest));
  ++stats_.rowclone_ops;
  return dest;
}

void VectorUnit::invert(dram::RowAddr src, dram::RowAddr dest) {
  // Dual-contact-row emulation: an inverted copy through the host.
  const BitVec data =
      engine_->read_row(bank_, engine_->global_of(sa_, src));
  engine_->write_row(bank_, engine_->global_of(sa_, dest), ~data);
  ++stats_.not_ops;
}

void VectorUnit::bitwise_and(const Vector& a, const Vector& b,
                             const Vector& out) {
  if (a.bits() != b.bits() || a.bits() != out.bits())
    throw std::invalid_argument("vector widths must match");
  for (unsigned bit = 0; bit < a.bits(); ++bit) {
    const dram::RowAddr ops[3] = {a.bit_rows[bit], b.bit_rows[bit], zero_row_};
    compute_maj(ops, out.bit_rows[bit]);
  }
}

void VectorUnit::bitwise_or(const Vector& a, const Vector& b,
                            const Vector& out) {
  if (a.bits() != b.bits() || a.bits() != out.bits())
    throw std::invalid_argument("vector widths must match");
  for (unsigned bit = 0; bit < a.bits(); ++bit) {
    const dram::RowAddr ops[3] = {a.bit_rows[bit], b.bit_rows[bit], one_row_};
    compute_maj(ops, out.bit_rows[bit]);
  }
}

void VectorUnit::bitwise_xor(const Vector& a, const Vector& b,
                             const Vector& out) {
  if (a.bits() != b.bits() || a.bits() != out.bits())
    throw std::invalid_argument("vector widths must match");
  for (unsigned bit = 0; bit < a.bits(); ++bit) {
    // x = (a | b) & ~(a & b): two MAJ3 ops, one inverted copy, one MAJ3.
    const dram::RowAddr and_ops[3] = {a.bit_rows[bit], b.bit_rows[bit],
                                      zero_row_};
    compute_maj(and_ops, scratch_a_);
    invert(scratch_a_, scratch_b_);
    const dram::RowAddr or_ops[3] = {a.bit_rows[bit], b.bit_rows[bit],
                                     one_row_};
    compute_maj(or_ops, scratch_a_);
    const dram::RowAddr final_ops[3] = {scratch_a_, scratch_b_, zero_row_};
    compute_maj(final_ops, out.bit_rows[bit]);
  }
}

void VectorUnit::add(const Vector& a, const Vector& b, const Vector& out) {
  if (a.bits() != b.bits() || a.bits() != out.bits())
    throw std::invalid_argument("vector widths must match");
  // carry lives in scratch_c_; initialized to zero.
  engine_->rowclone(bank_, engine_->global_of(sa_, zero_row_),
                    engine_->global_of(sa_, scratch_c_));
  ++stats_.rowclone_ops;
  for (unsigned bit = 0; bit < a.bits(); ++bit) {
    // carry' = MAJ3(a, b, c)  (into scratch_a_).
    const dram::RowAddr carry_ops[3] = {a.bit_rows[bit], b.bit_rows[bit],
                                        scratch_c_};
    compute_maj(carry_ops, scratch_a_);
    // sum = MAJ5(a, b, c, !carry', !carry').
    invert(scratch_a_, scratch_b_);
    const dram::RowAddr sum_ops[5] = {a.bit_rows[bit], b.bit_rows[bit],
                                      scratch_c_, scratch_b_, scratch_b_};
    compute_maj(sum_ops, out.bit_rows[bit]);
    // carry = carry'.
    engine_->rowclone(bank_, engine_->global_of(sa_, scratch_a_),
                      engine_->global_of(sa_, scratch_c_));
    ++stats_.rowclone_ops;
  }
}

}  // namespace simra::pud
