# Empty dependencies file for simd_vector_demo.
# This may be replaced when dependencies are built.
