#pragma once

/// Umbrella header for the SiMRA-DRAM library: the full public API of the
/// reproduction (device model, testbed, PUD operations, circuit-level
/// simulation, majority-logic synthesis, case studies, characterization).
///
/// Include what you need from the individual headers in deep builds; this
/// header exists for examples, notebooks, and quick experiments.

#include "bender/assembler.hpp"        // IWYU pragma: export
#include "bender/command_encoding.hpp" // IWYU pragma: export
#include "bender/executor.hpp"    // IWYU pragma: export
#include "bender/host.hpp"        // IWYU pragma: export
#include "bender/instruments.hpp" // IWYU pragma: export
#include "bender/program.hpp"     // IWYU pragma: export
#include "bender/testbed.hpp"     // IWYU pragma: export

#include "casestudy/content_destruction.hpp"
#include "casestudy/data_movement.hpp" // IWYU pragma: export
#include "casestudy/tmr.hpp"                 // IWYU pragma: export
#include "casestudy/trng.hpp"                // IWYU pragma: export

#include "charz/figures.hpp"     // IWYU pragma: export
#include "charz/limitations.hpp" // IWYU pragma: export
#include "charz/plan.hpp"        // IWYU pragma: export

#include "common/bitvec.hpp" // IWYU pragma: export
#include "common/rng.hpp"    // IWYU pragma: export
#include "common/stats.hpp"  // IWYU pragma: export
#include "common/table.hpp"  // IWYU pragma: export
#include "common/units.hpp"  // IWYU pragma: export

#include "dram/chip.hpp"        // IWYU pragma: export
#include "dram/module.hpp"      // IWYU pragma: export
#include "dram/power_model.hpp" // IWYU pragma: export
#include "dram/scrambler.hpp"   // IWYU pragma: export
#include "dram/vendor.hpp"      // IWYU pragma: export

#include "majsynth/cost_model.hpp"    // IWYU pragma: export
#include "majsynth/dram_executor.hpp" // IWYU pragma: export
#include "majsynth/microbench.hpp"    // IWYU pragma: export
#include "majsynth/network.hpp"       // IWYU pragma: export
#include "majsynth/synth.hpp"         // IWYU pragma: export

#include "pud/address_mapper.hpp"  // IWYU pragma: export
#include "pud/bulk_engine.hpp"     // IWYU pragma: export
#include "pud/engine.hpp"          // IWYU pragma: export
#include "pud/patterns.hpp"        // IWYU pragma: export
#include "pud/reliability_map.hpp" // IWYU pragma: export
#include "pud/row_group.hpp"       // IWYU pragma: export
#include "pud/subarray_mapper.hpp" // IWYU pragma: export
#include "pud/vector_unit.hpp"     // IWYU pragma: export
#include "pud/success.hpp"         // IWYU pragma: export

#include "spice/circuit.hpp"    // IWYU pragma: export
#include "spice/montecarlo.hpp" // IWYU pragma: export
