// Reproduces Fig 16: execution-time speedup of seven arithmetic & logic
// microbenchmarks using the new MAJX operations (MAJ5/7/9) over the
// MAJ3-with-4-row-activation state of the art (§8.1).
#include <iostream>

#include "common/env.hpp"
#include "common/table.hpp"
#include "majsynth/microbench.hpp"

int main() {
  using namespace simra;
  using namespace simra::majsynth;

  const std::size_t groups = full_scale_run() ? 48 : 12;
  std::cout << "=== Fig 16: microbenchmark speedup from MAJ5/7/9 ===\n";
  std::cout << "row groups sampled per capability point: " << groups << "\n\n";

  for (const auto& profile :
       {dram::VendorProfile::hynix_m(), dram::VendorProfile::micron_e()}) {
    const VendorCapability cap = measure_capability(profile, 0xcafe, groups);
    std::cout << profile.manufacturer
              << " — best-group success: baseline MAJ3@4-row "
              << Table::pct(cap.baseline_maj3_4row);
    for (const auto& [x, s] : cap.best_success_32row)
      std::cout << ", MAJ" << x << "@32-row " << Table::pct(s);
    std::cout << "\n";

    Table table({"microbenchmark", "baseline_us", "MAJ5 speedup",
                 "MAJ7 speedup", "MAJ9 speedup"});
    double sum5 = 0.0, sum7 = 0.0;
    std::size_t n_benches = 0;
    const auto results = run_microbenchmarks(cap);
    for (const auto& r : results) {
      auto cell = [&](unsigned x) {
        if (!r.majx_ns.count(x)) return std::string("n/a");
        return Table::num(r.speedup(x), 2) + "x";
      };
      table.add_row({r.name, Table::num(r.baseline_ns / 1000.0, 1), cell(5),
                     cell(7), cell(9)});
      sum5 += r.speedup(5);
      sum7 += r.speedup(7);
      ++n_benches;
    }
    table.print(std::cout);
    const double avg5 = sum5 / static_cast<double>(n_benches);
    const double avg7 = sum7 / static_cast<double>(n_benches);
    std::cout << "average MAJ5 speedup: " << Table::num(avg5, 2)
              << "x, MAJ7: " << Table::num(avg7, 2) << "x\n";
    std::cout << "paper: new MAJX ops average +"
              << (profile.short_name == "M" ? "121.61" : "46.54")
              << "% over the MAJ3 baseline"
              << (profile.short_name == "H"
                      ? "; MAJ9 degrades performance (poor success rate)"
                      : "")
              << "\n\n";
  }
  return 0;
}
