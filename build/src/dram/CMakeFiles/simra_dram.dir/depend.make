# Empty dependencies file for simra_dram.
# This may be replaced when dependencies are built.
