#include "verify/occupancy.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace simra::verify {

OccupancyStats occupancy(const bender::Program& program,
                         const RuleTable& table) {
  OccupancyStats stats;
  stats.extent_slots = program.extent_slots();
  stats.window_slots = table.trp_slots + 1;
  for (const WindowRuleSpec& w : table.windows)
    stats.window_slots = std::max(stats.window_slots, w.window_slots);

  const auto& commands = program.commands();
  stats.commands = commands.size();
  if (commands.empty()) return stats;
  stats.span_slots = commands.back().slot - commands.front().slot + 1;
  if (stats.extent_slots > 0)
    stats.utilization = static_cast<double>(stats.commands) /
                        static_cast<double>(stats.extent_slots);

  const std::uint64_t windows =
      (stats.extent_slots + stats.window_slots - 1) / stats.window_slots;
  std::vector<std::set<int>> banks_in_window(windows);
  for (const bender::TimedCommand& cmd : commands) {
    ++stats.per_kind[static_cast<std::size_t>(cmd.kind)];
    const bool rank_wide =
        cmd.kind == bender::CommandKind::kRef ||
        (cmd.kind == bender::CommandKind::kPre && cmd.a10);
    if (!rank_wide) {
      const int bank = static_cast<int>(cmd.bank);
      ++stats.per_bank[bank];
      banks_in_window[cmd.slot / stats.window_slots].insert(bank);
    }
  }
  std::size_t max_banks = 0;
  for (const auto& set : banks_in_window)
    max_banks = std::max(max_banks, set.size());
  stats.parallelism.assign(max_banks + 1, 0);
  for (const auto& set : banks_in_window) ++stats.parallelism[set.size()];
  return stats;
}

std::vector<RequestOccupancy> occupancy_by_request(
    const bender::Program& program, const std::vector<RequestSlice>& slices) {
  const auto& commands = program.commands();
  const double total =
      commands.empty() ? 0.0 : static_cast<double>(commands.size());
  std::vector<RequestOccupancy> out;
  out.reserve(slices.size());
  for (const RequestSlice& slice : slices) {
    RequestOccupancy ro;
    ro.slice = slice;
    const std::size_t first = slice.first_command;
    const std::size_t count = slice.command_count;
    if (count > 0 && first < commands.size() &&
        first + count <= commands.size()) {
      ro.span_slots =
          commands[first + count - 1].slot - commands[first].slot + 1;
      if (total > 0.0)
        ro.bus_share = static_cast<double>(count) / total;
    }
    out.push_back(ro);
  }
  return out;
}

const RequestSlice* slice_for_command(const std::vector<RequestSlice>& slices,
                                      std::size_t command_index) {
  for (const RequestSlice& slice : slices)
    if (command_index >= slice.first_command &&
        command_index < slice.first_command + slice.command_count)
      return &slice;
  return nullptr;
}

void export_occupancy_metrics(const OccupancyStats& stats,
                              const std::string& program_name) {
  auto& registry = obs::MetricsRegistry::instance();
  registry.counter("verify.occupancy.programs").add_count(1);
  registry.counter("verify.occupancy.commands").add_count(stats.commands);
  registry.counter("verify.occupancy.extent_slots")
      .add_count(stats.extent_slots);
  registry.gauge("verify.occupancy.utilization").set(stats.utilization);
  static const std::vector<double> kBankBounds = {0, 1, 2, 4, 8, 16};
  auto& parallelism =
      registry.histogram("verify.occupancy.bank_parallelism", kBankBounds);
  for (std::size_t k = 0; k < stats.parallelism.size(); ++k) {
    if (stats.parallelism[k] > 0)
      parallelism.observe(static_cast<double>(k), stats.parallelism[k]);
  }

  std::ostringstream utilization;
  utilization.precision(6);
  utilization << stats.utilization;
  obs::emit_event(
      "program_occupancy",
      {{"program", program_name},
       {"commands", std::to_string(stats.commands)},
       {"extent_slots", std::to_string(stats.extent_slots)},
       {"span_slots", std::to_string(stats.span_slots)},
       {"critical_path_slots", std::to_string(stats.critical_path_slots)},
       {"utilization", utilization.str()}});
}

}  // namespace simra::verify
