// simra::prof's registry now lives in the obs metrics registry: the
// SIMRA_PROF_SCOPE surface (common/prof.hpp) is a compatibility shim, so
// existing call sites keep compiling while snapshots, the Prometheus
// export, and BENCH_harness.json's metrics section all read one store.
#include "common/prof.hpp"
#include "obs/metrics.hpp"

namespace simra::prof {

Counter& Counter::get(const std::string& name) {
  return obs::MetricsRegistry::instance().counter(name);
}

std::vector<KernelStats> snapshot() {
  return obs::MetricsRegistry::instance().counters_snapshot();
}

void reset() { obs::MetricsRegistry::instance().reset(); }

}  // namespace simra::prof
