#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pud/engine.hpp"
#include "pud/row_group.hpp"

namespace simra {
class Rng;
}

namespace simra::pud {

/// Bit-serial SIMD arithmetic whose operands *live in DRAM rows* — the
/// SIMDRAM-style execution model §8.1's microbenchmarks assume. Values
/// use a vertical layout: element i occupies column i of every bit row,
/// so one in-DRAM operation processes all 8192 elements of a row at once.
///
/// The unit reserves one activation group as its compute scratchpad;
/// every gate stages its operand rows into the group with RowClone,
/// fires the MAJ APA, and clones the result out — the host never touches
/// the data (NOT is the one exception: an inverted copy, standing in for
/// Ambit's dual-contact rows).
class VectorUnit {
 public:
  /// `group_rows` is the activation size of the compute group (32
  /// maximizes MAJ reliability via replication).
  VectorUnit(Engine* engine, dram::BankId bank, dram::SubarrayId sa,
             Rng* rng, std::size_t group_rows = 32);

  /// A vertically laid out vector: bit_rows[k] holds bit k of every
  /// element (subarray-local row addresses).
  struct Vector {
    std::vector<dram::RowAddr> bit_rows;
    unsigned bits() const { return static_cast<unsigned>(bit_rows.size()); }
  };

  /// Number of elements per vector (the row width).
  std::size_t lanes() const;

  /// Allocates a `bits`-wide vector in rows outside the compute group.
  Vector alloc(unsigned bits);

  /// Stores per-lane values (values[i % values.size()] goes to lane i).
  void store(const Vector& v, std::span<const std::uint32_t> values);
  /// Reads the vector back into per-lane values.
  std::vector<std::uint32_t> load(const Vector& v);

  // --- Element-wise operations, all lanes in parallel ---

  /// out = a & b / a | b / a ^ b (per bit row).
  void bitwise_and(const Vector& a, const Vector& b, const Vector& out);
  void bitwise_or(const Vector& a, const Vector& b, const Vector& out);
  void bitwise_xor(const Vector& a, const Vector& b, const Vector& out);

  /// out = a + b (mod 2^bits), ripple carry in-DRAM.
  void add(const Vector& a, const Vector& b, const Vector& out);

  struct Stats {
    std::size_t maj_ops = 0;
    std::size_t rowclone_ops = 0;
    std::size_t not_ops = 0;
  };
  const Stats& stats() const noexcept { return stats_; }

 private:
  dram::RowAddr alloc_row();
  /// dest = MAJ(operand rows) computed in the group; returns dest.
  dram::RowAddr compute_maj(std::span<const dram::RowAddr> operands,
                            dram::RowAddr dest);
  /// dest = NOT src (inverted copy; dual-contact-row emulation).
  void invert(dram::RowAddr src, dram::RowAddr dest);

  Engine* engine_;
  dram::BankId bank_;
  dram::SubarrayId sa_;
  RowGroup group_;
  std::vector<bool> row_used_;
  dram::RowAddr zero_row_ = 0;  ///< constant all-0s row.
  dram::RowAddr one_row_ = 0;   ///< constant all-1s row.
  dram::RowAddr scratch_a_ = 0;
  dram::RowAddr scratch_b_ = 0;
  dram::RowAddr scratch_c_ = 0;
  Stats stats_;
};

}  // namespace simra::pud
