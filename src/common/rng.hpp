#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>

namespace simra {

/// Deterministic, fast pseudo-random generator (xoshiro256++).
///
/// All stochastic behaviour in the simulator flows through this generator so
/// that experiments are exactly reproducible from a seed. Satisfies
/// std::uniform_random_bit_generator, so it can drive <random> distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit lanes from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x5eed'5eed'5eed'5eedULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, bound). `bound` must be > 0.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Standard normal deviate (Marsaglia polar method, cached spare).
  double normal() noexcept;

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Fills `out` with standard normal deviates in the exact sequence
  /// repeated `normal()` calls would produce (same draws, same spare-value
  /// caching), so batched consumers stay value-identical to per-call ones.
  /// Deliberately scalar at every SIMD tier: Marsaglia's polar method is a
  /// sequentially dependent rejection sampler, so a vector variant could
  /// not reproduce this pinned sequence (hash-keyed batches that can
  /// vectorize live in dram::kernels::hashed_normal_fill).
  void normal_fill(std::span<double> out) noexcept;

  /// Bernoulli trial with success probability `p`.
  bool chance(double p) noexcept;

  /// Derives an independent child generator (for per-entity streams).
  Rng fork() noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
};

/// splitmix64 step; used for seeding and hashing small integer tuples.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Stateless hash of a 64-bit value (one splitmix64 round).
std::uint64_t hash64(std::uint64_t value) noexcept;

/// Combines a hash with another value (for deterministic per-entity seeds).
std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t value) noexcept;

}  // namespace simra
