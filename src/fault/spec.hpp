#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace simra::fault {

/// Parsed `SIMRA_FAULT_SPEC`: every injector rate, plus the resilience
/// policy (retry / quarantine) the harness applies on top. The spec is a
/// comma-separated `key=value` list; list-valued keys separate elements
/// with ':'. Example:
///
///   SIMRA_FAULT_SPEC="transport.bitflip=0.002,task.crash_tasks=1:5,retry.max=2"
///
/// All rates are probabilities in [0, 1]; a rate of exactly 0 draws
/// nothing from the fault streams, so a zero-rate spec is byte-identical
/// to running with no spec at all.
struct FaultSpec {
  // --- bender transport faults (per command) ---
  double transport_bitflip = 0.0;  ///< one command-word bit flip.
  double transport_drop = 0.0;     ///< command never reaches the chip.
  double transport_dup = 0.0;      ///< command delivered twice.
  double transport_jitter = 0.0;   ///< command lands one slot early/late.

  // --- chip-model faults ---
  double chip_stuck = 0.0;      ///< per-cell stuck-at probability (persistent map).
  double chip_retention = 0.0;  ///< per-cell decay flip probability per activation.
  double chip_disturb = 0.0;    ///< per-neighbour-cell APA disturbance scale (x row count).

  // --- harness (chip-task) faults ---
  double task_fail = 0.0;      ///< per-attempt injected chip-task crash probability.
  double task_delay_ms = 0.0;  ///< artificial latency added to every task attempt.
  /// Chip-task ordinals (position in the (module, chip) walk) that crash
  /// on *every* attempt — the deterministic way to take down specific
  /// chips until the retry budget quarantines them.
  std::vector<std::uint64_t> task_crash_tasks;

  // --- resilience policy ---
  unsigned retry_max = 2;          ///< retries per chip task after the first attempt.
  double retry_backoff_ms = 0.0;   ///< base of the exponential backoff between attempts.
  bool quarantine_budget_set = false;
  std::size_t quarantine_budget = 0;  ///< max chips quarantined before the run aborts.
  bool trace = false;  ///< record the per-chip fault event trace in Coverage.

  bool any_transport() const noexcept {
    return transport_bitflip > 0.0 || transport_drop > 0.0 ||
           transport_dup > 0.0 || transport_jitter > 0.0;
  }
  bool any_chip() const noexcept {
    return chip_stuck > 0.0 || chip_retention > 0.0 || chip_disturb > 0.0;
  }
  bool any_task() const noexcept {
    return task_fail > 0.0 || task_delay_ms > 0.0 || !task_crash_tasks.empty();
  }
  /// Whether any injector is configured at a non-zero rate.
  bool injects() const noexcept {
    return any_transport() || any_chip() || any_task();
  }

  /// Quarantine cap the harness enforces: the explicit value when set;
  /// otherwise unlimited while faults are being injected (an injected
  /// failure is expected, not a bug) and zero for clean runs (a real
  /// failure must abort loudly).
  std::size_t effective_quarantine_budget() const noexcept;

  bool crashes_task(std::uint64_t task_ordinal) const noexcept;

  /// Parses a spec string; throws std::invalid_argument naming the
  /// offending key on unknown keys, malformed values, or out-of-range
  /// rates. The empty string parses to the all-defaults spec.
  static FaultSpec parse(const std::string& spec);

  /// parse(SIMRA_FAULT_SPEC), or the all-defaults spec when unset.
  static FaultSpec from_env();
};

/// `SIMRA_FAULT_SEED` (decimal), or a fixed default. All fault streams of
/// a run derive from this seed plus (domain, module, chip, attempt) keys,
/// never from scheduling, so a given seed + plan reproduces the identical
/// fault trace at any thread count.
std::uint64_t fault_seed_from_env();

}  // namespace simra::fault
