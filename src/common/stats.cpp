#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace simra {

double sorted_quantile(std::span<const double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double mean_of(std::span<const double> sample) {
  if (sample.empty()) return 0.0;
  double sum = 0.0;
  for (double v : sample) sum += v;
  return sum / static_cast<double>(sample.size());
}

BoxStats box_stats(std::span<const double> sample) {
  BoxStats out;
  if (sample.empty()) return out;
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  out.min = sorted.front();
  out.max = sorted.back();
  out.q1 = sorted_quantile(sorted, 0.25);
  out.median = sorted_quantile(sorted, 0.50);
  out.q3 = sorted_quantile(sorted, 0.75);
  out.mean = mean_of(sorted);
  out.count = sorted.size();
  return out;
}

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void SampleSet::merge(const SampleSet& other) {
  values_.insert(values_.end(), other.values_.begin(), other.values_.end());
}

double RunningStats::variance() const noexcept {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace simra
