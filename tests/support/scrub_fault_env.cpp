// Unsets the fault-injection environment before any test runs (static
// initialization happens before main, hence before gtest reads env).
// Link this TU into test binaries whose expectations pin the no-fault
// physics — golden tables, determinism regressions, property invariants —
// so an ambient SIMRA_FAULT_SPEC (e.g. from the fault-heavy CI job)
// cannot perturb them. Tests that exercise faults opt back in with
// simra::testing::ScopedFaultSpec.

#include <cstdlib>

namespace {

const int scrubbed = [] {
  ::unsetenv("SIMRA_FAULT_SPEC");
  ::unsetenv("SIMRA_FAULT_SEED");
  return 0;
}();

}  // namespace
