#include "charz/figures.hpp"
#include "charz/runner.hpp"
#include "charz/series.hpp"
#include "common/rng.hpp"
#include "pud/success.hpp"

namespace simra::charz {

namespace {

/// Skips MAJX points a vendor cannot perform (<1 % success at most, §5
/// fn. 11): MAJ9+ on Mfr. M. (MAJ11+ on Mfr. H is outside the figure.)
bool vendor_supports(const dram::VendorProfile& profile, unsigned x) {
  return profile.short_name == "M" ? x <= 7 : x <= 9;
}

}  // namespace

FigureData fig6_maj3_timing(const Plan& plan) {
  const auto sweep = run_instances<SeriesAccumulator>(
      plan, [&plan](Instance& inst, SeriesAccumulator& out) {
        for (double t1 : {1.5, 3.0, 6.0}) {
          for (double t2 : {1.5, 3.0}) {
            for (std::size_t n : {4u, 8u, 16u, 32u}) {
              pud::MeasureConfig cfg;
              cfg.pattern = dram::DataPattern::kRandom;
              cfg.trials = plan.trials;
              cfg.timings = {Nanoseconds{t1}, Nanoseconds{t2}};
              for (std::size_t gi = 0; gi < plan.groups_per_size; ++gi) {
                const pud::RowGroup group =
                    pud::sample_group(inst.engine.layout(), n, inst.rng);
                out.add({format_ns(t1), format_ns(t2), std::to_string(n)},
                        pud::measure_majx(inst.engine, inst.bank,
                                          inst.subarray, group, 3, cfg,
                                          inst.rng));
              }
            }
          }
        }
      });
  return finish_sweep(
      sweep, "Fig 6: MAJ3 success rate vs APA timing and activation size",
      {"t1", "t2", "N"});
}

FigureData fig7_majx_datapattern(const Plan& plan) {
  const std::vector<dram::DataPattern> patterns = {
      dram::DataPattern::kRandom, dram::DataPattern::k00FF,
      dram::DataPattern::kAA55, dram::DataPattern::kCC33,
      dram::DataPattern::k6699};
  const auto sweep = run_instances<SeriesAccumulator>(
      plan, [&](Instance& inst, SeriesAccumulator& out) {
        for (const auto& [x, n] : majx_points()) {
          if (!vendor_supports(inst.profile, x)) continue;
          for (dram::DataPattern pattern : patterns) {
            pud::MeasureConfig cfg;
            cfg.pattern = pattern;
            cfg.trials = plan.trials;
            cfg.timings = pud::ApaTimings::best_for_majx();
            for (std::size_t gi = 0; gi < plan.groups_per_size; ++gi) {
              const pud::RowGroup group =
                  pud::sample_group(inst.engine.layout(), n, inst.rng);
              out.add({"MAJ" + std::to_string(x), std::to_string(n),
                       dram::to_string(pattern)},
                      pud::measure_majx(inst.engine, inst.bank, inst.subarray,
                                        group, x, cfg, inst.rng));
            }
          }
        }
      });
  return finish_sweep(sweep, "Fig 7: MAJX success rate vs data pattern",
                      {"op", "N", "pattern"});
}

FigureData fig7_majx_by_vendor(const Plan& plan) {
  const auto sweep = run_instances<SeriesAccumulator>(
      plan, [&plan](Instance& inst, SeriesAccumulator& out) {
        for (unsigned x : {3u, 5u, 7u, 9u}) {
          // Probe MAJ9 on every vendor here: the point of this breakdown is
          // to *show* the Mfr. M cutoff rather than assume it.
          pud::MeasureConfig cfg;
          cfg.pattern = dram::DataPattern::kRandom;
          cfg.trials = plan.trials;
          cfg.timings = pud::ApaTimings::best_for_majx();
          for (std::size_t gi = 0; gi < plan.groups_per_size; ++gi) {
            const pud::RowGroup group =
                pud::sample_group(inst.engine.layout(), 32, inst.rng);
            out.add({inst.profile.short_name, "MAJ" + std::to_string(x)},
                    pud::measure_majx(inst.engine, inst.bank, inst.subarray,
                                      group, x, cfg, inst.rng));
          }
        }
      });
  return finish_sweep(
      sweep, "Fig 7 (vendor breakdown): MAJX @ 32-row, random pattern",
      {"vendor", "op"});
}

namespace {

FigureData majx_environment_sweep(const Plan& plan, bool sweep_temperature) {
  const std::vector<double> temps = {50, 60, 70, 80, 90};
  const std::vector<double> vpps = {2.5, 2.4, 2.3, 2.2, 2.1};
  const std::vector<double>& points = sweep_temperature ? temps : vpps;

  const auto sweep = run_instances<SeriesAccumulator>(
      plan, [&](Instance& inst, SeriesAccumulator& out) {
        for (const auto& [x, n] : majx_points()) {
          if (!vendor_supports(inst.profile, x)) continue;
          pud::MeasureConfig cfg;
          cfg.pattern = dram::DataPattern::kRandom;
          cfg.trials = plan.trials;
          cfg.timings = pud::ApaTimings::best_for_majx();
          for (std::size_t gi = 0; gi < plan.groups_per_size; ++gi) {
            // The same row group is retested at every operating point, as on
            // the real testbed — otherwise group-to-group spread would drown
            // the small environmental effect.
            const pud::RowGroup group =
                pud::sample_group(inst.engine.layout(), n, inst.rng);
            for (double point : points) {
              auto& env = inst.engine.chip().env();
              if (sweep_temperature)
                env.temperature = Celsius{point};
              else
                env.vpp = Volts{point};
              out.add({"MAJ" + std::to_string(x), std::to_string(n),
                       format_ns(point)},
                      pud::measure_majx(inst.engine, inst.bank, inst.subarray,
                                        group, x, cfg, inst.rng));
            }
          }
        }
        inst.engine.chip().env() = dram::EnvironmentState{};
      });
  return finish_sweep(sweep,
                      sweep_temperature
                          ? "Fig 8: MAJX success rate vs temperature"
                          : "Fig 9: MAJX success rate vs wordline voltage",
                      {"op", "N", sweep_temperature ? "tempC" : "vpp"});
}

}  // namespace

FigureData fig8_majx_temperature(const Plan& plan) {
  return majx_environment_sweep(plan, /*sweep_temperature=*/true);
}

FigureData fig9_majx_voltage(const Plan& plan) {
  return majx_environment_sweep(plan, /*sweep_temperature=*/false);
}

}  // namespace simra::charz
