#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "bender/program.hpp"
#include "verify/rules.hpp"

namespace simra::verify {

/// Command-bus occupancy accounting for one program (paper §9
/// Limitation 2: the testbed issues at most one command per 1.5 ns slot,
/// so slot-level packing density bounds PUD throughput directly).
struct OccupancyStats {
  std::size_t commands = 0;        ///< issued commands.
  std::uint64_t extent_slots = 0;  ///< program extent incl. trailing pad.
  std::uint64_t span_slots = 0;    ///< first..last issued slot, inclusive.
  /// commands / extent_slots: the fraction of bus slots carrying a
  /// command over the program's scheduled lifetime (0 for empty).
  double utilization = 0.0;
  /// Minimum extent the same command sequence needs under the rule table
  /// (the optimizer's compacted extent). 0 until a caller that ran the
  /// optimizer fills it in; extent_slots - critical_path_slots is then
  /// the recoverable slack.
  std::uint64_t critical_path_slots = 0;
  /// Per-kind command counts, indexed by bender::CommandKind.
  std::array<std::size_t, 5> per_kind{};
  /// Per-bank issued commands (REF and PREA are rank-wide: excluded).
  std::map<int, std::size_t> per_bank;
  /// Bank-level parallelism histogram: the timeline is cut into fixed
  /// windows of `window_slots` (the table's tFAW window, or tRP+1 when no
  /// window rule exists) and entry k counts windows in which exactly k
  /// distinct banks issued a command. Entry 0 counts idle windows.
  std::vector<std::size_t> parallelism;
  std::uint64_t window_slots = 0;  ///< histogram window width.
};

/// Single pass over the slot timeline; pure accounting, no findings.
OccupancyStats occupancy(const bender::Program& program,
                         const RuleTable& table);

/// One request's command range on a fused batch program — the serving
/// layer's slot->request attribution table (see serve::FusedExtent).
struct RequestSlice {
  std::uint64_t request_id = 0;
  std::uint32_t tenant = 0;
  std::size_t first_command = 0;
  std::size_t command_count = 0;
};

/// Per-request share of one fused program's command bus: the request's
/// own command count, the slot span its commands occupy (first..last
/// issued slot, inclusive), and its fraction of the program's total
/// issued commands. Lets Limitation 2 accounting — and any finding with a
/// command_index — be broken down per request and tenant.
struct RequestOccupancy {
  RequestSlice slice;
  std::uint64_t span_slots = 0;
  double bus_share = 0.0;
};

/// Slices one program's timeline by the attribution table. Slices whose
/// range falls outside the program (e.g. an empty request) report zero.
std::vector<RequestOccupancy> occupancy_by_request(
    const bender::Program& program, const std::vector<RequestSlice>& slices);

/// Maps a finding's command index to the owning slice, or nullptr when no
/// slice covers it (e.g. a rank-wide REF appended outside any request).
const RequestSlice* slice_for_command(const std::vector<RequestSlice>& slices,
                                      std::size_t command_index);

/// Publishes one program's occupancy into the simra::obs registry
/// (counters `verify.occupancy.*`, gauge `verify.occupancy.utilization`,
/// histogram `verify.occupancy.bank_parallelism`) and emits a
/// `program_occupancy` event tagged with the program name. No-ops are
/// the registry's business: cheap enough to call unconditionally.
void export_occupancy_metrics(const OccupancyStats& stats,
                              const std::string& program_name);

}  // namespace simra::verify
