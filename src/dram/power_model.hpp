#pragma once

#include <cstddef>
#include <string>

#include "common/units.hpp"

namespace simra::dram {

/// DRAM operation classes whose power Fig 5 compares.
enum class PowerOp {
  kRead,
  kWrite,
  kActPre,   ///< standard single-row ACT followed by PRE.
  kRefresh,
  kManyRowActivation,  ///< APA opening N rows (N given separately).
};

std::string to_string(PowerOp op);

/// Average-power model of standard DRAM operations and of simultaneous
/// many-row activation, calibrated to Fig 5 (see calib::PowerParams).
class PowerModel {
 public:
  /// Average power in mW. `n_rows` only matters for kManyRowActivation.
  static Milliwatts average_power(PowerOp op, std::size_t n_rows = 1);

  /// Power of an N-row APA as a fraction of REF power (Obs. 5 reports
  /// 1 - this = 21.19 % at N=32).
  static double apa_vs_ref_fraction(std::size_t n_rows);

  /// Energy (mW * ns = pJ) of one operation of the given duration.
  static double energy_pj(PowerOp op, Nanoseconds duration,
                          std::size_t n_rows = 1);
};

}  // namespace simra::dram
