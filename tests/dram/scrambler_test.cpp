#include "dram/scrambler.hpp"

#include <gtest/gtest.h>

#include <set>

namespace simra::dram {
namespace {

using Kind = RowScrambler::Kind;

class ScramblerKindTest : public ::testing::TestWithParam<Kind> {};

TEST_P(ScramblerKindTest, BijectiveAndInvertibleOverFullDomain) {
  const RowScrambler s(GetParam(), /*local_bits=*/9, /*parameter=*/3);
  std::set<RowAddr> images;
  for (RowAddr r = 0; r < 512; ++r) {
    const RowAddr internal = s.to_internal(r);
    ASSERT_LT(internal, 512u);
    images.insert(internal);
    ASSERT_EQ(s.to_logical(internal), r) << "row " << r;
  }
  EXPECT_EQ(images.size(), 512u);  // bijection.
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ScramblerKindTest,
                         ::testing::Values(Kind::kIdentity, Kind::kBitReversal,
                                           Kind::kXorFold, Kind::kBlockSwap));

TEST(Scrambler, IdentityPassesThrough) {
  const RowScrambler s;
  EXPECT_TRUE(s.is_identity());
  EXPECT_EQ(s.to_internal(639), 639u);  // works beyond 2^bits (640-row SAs).
  EXPECT_EQ(s.to_logical(639), 639u);
}

TEST(Scrambler, BitReversalKnownValues) {
  const RowScrambler s(Kind::kBitReversal, 9);
  EXPECT_EQ(s.to_internal(0), 0u);
  EXPECT_EQ(s.to_internal(1), 256u);   // bit 0 -> bit 8.
  EXPECT_EQ(s.to_internal(256), 1u);
  EXPECT_EQ(s.to_internal(511), 511u);
}

TEST(Scrambler, XorFoldChangesMostAddresses) {
  const RowScrambler s(Kind::kXorFold, 9, 3);
  int moved = 0;
  for (RowAddr r = 0; r < 512; ++r) moved += (s.to_internal(r) != r) ? 1 : 0;
  EXPECT_GT(moved, 256);
}

TEST(Scrambler, BlockSwapSwapsHalves) {
  const RowScrambler s(Kind::kBlockSwap, 9, 3);  // swap halves of 8-row blocks.
  EXPECT_EQ(s.to_internal(0), 4u);
  EXPECT_EQ(s.to_internal(4), 0u);
  EXPECT_EQ(s.to_internal(11), 15u);
}

TEST(Scrambler, DomainChecked) {
  const RowScrambler s(Kind::kBitReversal, 9);
  EXPECT_THROW((void)s.to_internal(512), std::out_of_range);
  EXPECT_THROW((void)s.to_logical(1024), std::out_of_range);
}

TEST(Scrambler, ParameterValidation) {
  EXPECT_THROW(RowScrambler(Kind::kXorFold, 9, 0), std::invalid_argument);
  EXPECT_THROW(RowScrambler(Kind::kXorFold, 9, 9), std::invalid_argument);
  EXPECT_THROW(RowScrambler(Kind::kBlockSwap, 9, 0), std::invalid_argument);
  EXPECT_THROW(RowScrambler(Kind::kIdentity, 0), std::invalid_argument);
}

TEST(Scrambler, Describe) {
  const RowScrambler s(Kind::kXorFold, 9, 3);
  EXPECT_EQ(s.describe(), "xor-fold(bits=9, k=3)");
  EXPECT_EQ(to_string(Kind::kBlockSwap), "block-swap");
}

}  // namespace
}  // namespace simra::dram
