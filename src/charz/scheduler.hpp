#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace simra::charz {

/// Work-stealing task pool for the instance sweep.
///
/// Layout: one LIFO deque per worker. A task spawned from a worker thread
/// is pushed to that worker's own deque (children run hot, right after
/// their parent); an idle worker first pops its own deque from the back
/// (LIFO), then steals from the *front* of a uniformly random victim's
/// deque (FIFO — stolen work is the oldest, coarsest task). The
/// constructing thread is worker 0 and participates in execution whenever
/// it waits on a Group, so a pool of N workers spawns only N - 1 threads.
///
/// Scheduling is intentionally free to interleave tasks any way the
/// steals fall: every task the harness submits derives its seeds and
/// output slot purely from plan coordinates, so results are byte-identical
/// no matter which worker ran what when. The only scheduling-dependent
/// outputs are the pool's own stats (steals, per-worker task counts),
/// which go to the metrics registry — never into the byte-compared
/// trace/event artifacts.
///
/// A pool of `workers <= 1` never enqueues: `Group::spawn` runs the task
/// inline on the calling thread, preserving exact serial spawn order with
/// zero queueing overhead.
class WorkStealingPool {
 public:
  using Task = std::function<void()>;

  explicit WorkStealingPool(unsigned workers);
  ~WorkStealingPool();
  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  unsigned workers() const noexcept {
    return static_cast<unsigned>(states_.size());
  }

  /// A joinable set of spawned tasks. Groups nest: a task may construct a
  /// Group on the same pool and spawn subtasks (fork-join); its `wait()`
  /// executes pending pool tasks — its own children first (LIFO), then
  /// steals — so waiting never deadlocks and never idles a worker while
  /// runnable work exists. Tasks must not let exceptions escape if the
  /// spawner needs per-task failure attribution; as a backstop, the first
  /// escaped exception is captured and rethrown from `wait()`.
  class Group {
   public:
    explicit Group(WorkStealingPool& pool) : pool_(pool) {}
    Group(const Group&) = delete;
    Group& operator=(const Group&) = delete;
    /// Blocks until every spawned task finished (executing tasks itself
    /// while it waits), then rethrows the first captured task exception.
    ~Group() noexcept(false) { wait(); }

    void spawn(Task task) { pool_.spawn(*this, std::move(task)); }
    void wait();

   private:
    friend class WorkStealingPool;
    WorkStealingPool& pool_;
    std::atomic<std::size_t> pending_{0};
    std::mutex error_mutex_;
    std::exception_ptr first_error_;
  };

  /// Scheduler counters accumulated since construction.
  struct Stats {
    std::uint64_t spawned = 0;
    std::uint64_t steals = 0;
    std::vector<std::uint64_t> tasks_per_worker;
  };
  Stats stats() const;

  /// Publishes `stats()` into the obs metrics registry:
  /// `charz/steals` and `charz/tasks_spawned` counters plus the
  /// `charz/worker_tasks` per-worker load histogram. Scheduling-dependent
  /// by nature, so these surface only through metrics — never through the
  /// deterministic trace/event artifacts.
  void publish_stats() const;

 private:
  struct Entry {
    Task task;
    Group* group = nullptr;
  };

  struct WorkerState {
    mutable std::mutex mutex;
    std::deque<Entry> deque;
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> steals{0};
    std::uint64_t steal_state = 0;  ///< per-worker victim-choice stream
                                    ///< (owner-thread only).
  };

  void spawn(Group& group, Task task);
  void run_entry(Entry entry, WorkerState& self, bool stolen);
  bool try_run_one(WorkerState& self);
  bool pop_own(WorkerState& self, Entry& out);
  bool steal(WorkerState& thief, Entry& out);
  void worker_loop(std::size_t index);

  std::vector<std::unique_ptr<WorkerState>> states_;
  std::vector<std::thread> threads_;
  std::atomic<std::uint64_t> spawned_{0};
  std::atomic<bool> shutdown_{false};
  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;
};

}  // namespace simra::charz
