// Reproduces Fig 8: MAJX success rate at 50-90 C (Obs. 11/12).
#include "bench_common.hpp"
#include "charz/figures.hpp"

int main() {
  using namespace simra;
  const charz::Plan plan = bench_common::announced_plan(
      "Fig 8: MAJX success rate vs temperature");
  const charz::FigureData figure = bench_common::timed_figure(
      plan, "fig8_majx_temperature", charz::fig8_majx_temperature);
  bench_common::print_figure(figure);

  std::cout << "Paper reference points:\n";
  const double maj3_4_50 = figure.mean_at({"MAJ3", "4", "50"});
  const double maj3_4_90 = figure.mean_at({"MAJ3", "4", "90"});
  std::cout << "  MAJ3 @ 4-row 50->90C variation: paper up to 15.20% — "
               "measured "
            << Table::num((maj3_4_90 - maj3_4_50) * 100.0, 2) << "%\n";
  const double maj3_32_50 = figure.mean_at({"MAJ3", "32", "50"});
  const double maj3_32_90 = figure.mean_at({"MAJ3", "32", "90"});
  std::cout << "  MAJ3 @ 32-row 50->90C variation: paper up to 1.65% — "
               "measured "
            << Table::num((maj3_32_90 - maj3_32_50) * 100.0, 2) << "%\n";
  return 0;
}
