#include "dram/bank.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dram/chip.hpp"

namespace simra::dram {
namespace {

/// Bank tests drive the FSM through a chip (which owns the context).
class BankTest : public ::testing::Test {
 protected:
  Chip chip_{VendorProfile::hynix_m(), 42};
  Bank& bank() { return chip_.bank(0); }
  std::size_t columns() const { return chip_.profile().geometry.columns; }

  BitVec random_row() {
    BitVec v(columns());
    v.randomize(chip_.rng());
    return v;
  }
};

TEST_F(BankTest, NormalActivateWriteReadPrecharge) {
  Bank& b = bank();
  EXPECT_FALSE(b.is_open());
  b.act(10, 0.0);
  EXPECT_TRUE(b.is_open());
  EXPECT_EQ(b.open_rows(), (std::vector<RowAddr>{10}));

  BitVec data = random_row();
  b.write(0, data, 20.0);
  EXPECT_EQ(b.read(0, columns(), 30.0), data);
  b.pre(50.0);
  b.act(11, 70.0);  // t2 = 20 ns >= tRP: normal.
  EXPECT_EQ(b.open_rows(), (std::vector<RowAddr>{11}));
  // Row 10 retained its data (t1 >= sense enable).
  EXPECT_EQ(b.backdoor_row(10), data);
}

TEST_F(BankTest, ReadOfClosedBankThrows) {
  EXPECT_THROW((void)bank().read(0, 8, 0.0), std::logic_error);
}

TEST_F(BankTest, WriteToClosedBankIgnoredAndCounted) {
  Bank& b = bank();
  BitVec data = random_row();
  b.write(0, data, 0.0);
  EXPECT_EQ(b.stats().ignored_commands, 1u);
}

TEST_F(BankTest, TimestampsMustBeMonotonic) {
  Bank& b = bank();
  b.act(0, 100.0);
  EXPECT_THROW(b.pre(50.0), std::invalid_argument);
}

TEST_F(BankTest, SimultaneousActivationOpensDecoderGroup) {
  Bank& b = bank();
  // Initialize all-zeros so the charge share resolves to zeros.
  for (RowAddr r : chip_.layout().activation_group(0, 7))
    b.backdoor_row(r).fill(false);
  b.act(0, 0.0);
  b.pre(3.0);
  b.act(7, 6.0);  // t2 = 3 ns: interrupted precharge.
  EXPECT_EQ(b.open_rows(), (std::vector<RowAddr>{0, 1, 6, 7}));
  EXPECT_EQ(b.stats().simultaneous_activations, 1u);
}

TEST_F(BankTest, SimultaneousChargeShareWritesMajorityBack) {
  Bank& b = bank();
  BitVec pattern = random_row();
  for (RowAddr r : chip_.layout().activation_group(0, 7))
    b.backdoor_row(r) = pattern;
  b.act(0, 0.0);
  b.pre(1.5);
  b.act(7, 4.5);
  // Unanimous rows: the resolved buffer equals the stored pattern.
  EXPECT_EQ(b.row_buffer(), pattern);
  for (RowAddr r : b.open_rows()) EXPECT_EQ(b.backdoor_row(r), pattern);
}

TEST_F(BankTest, WriteOverdriveReachesAllOpenRows) {
  Bank& b = bank();
  BitVec init(columns(), false);
  for (RowAddr r : chip_.layout().activation_group(0, 7))
    b.backdoor_row(r) = init;
  b.act(0, 0.0);
  b.pre(3.0);
  b.act(7, 6.0);
  BitVec data = random_row();
  b.write(0, data, 30.0);
  for (RowAddr r : b.open_rows()) {
    // At (3, 3) the overdrive is ~99.99 % reliable per cell.
    EXPECT_GT(b.backdoor_row(r).matches(data), columns() * 99 / 100);
  }
}

TEST_F(BankTest, ConsecutiveActivationPerformsRowClone) {
  Bank& b = bank();
  BitVec source = random_row();
  b.act(100, 0.0);
  b.write(0, source, 20.0);
  b.pre(60.0);       // t1 = 60 >= tRAS: SA latched.
  b.act(101, 66.0);  // t2 = 6 ns: consecutive activation.
  EXPECT_EQ(b.stats().consecutive_activations, 1u);
  EXPECT_EQ(b.open_rows(), (std::vector<RowAddr>{101}));
  EXPECT_GT(b.backdoor_row(101).matches(source), columns() * 99 / 100);
}

TEST_F(BankTest, EarlyPrechargeLeavesRowFrac) {
  Bank& b = bank();
  b.act(42, 0.0);
  b.pre(1.5);        // long before sense enable.
  b.act(300, 100.0); // completes the precharge.
  EXPECT_EQ(b.backdoor_row_state(42), RowState::kFrac);
  EXPECT_GE(b.stats().frac_events, 1u);
}

TEST_F(BankTest, ActivatingFracRowRestoresResolvedData) {
  Bank& b = bank();
  b.act(42, 0.0);
  b.pre(1.5);
  b.act(300, 100.0);
  b.pre(200.0);
  b.act(42, 300.0);  // sense the VDD/2 row.
  EXPECT_EQ(b.backdoor_row_state(42), RowState::kValid);
  EXPECT_EQ(b.backdoor_row(42), b.row_buffer());
}

TEST_F(BankTest, ActToOpenBankIgnored) {
  Bank& b = bank();
  b.act(1, 0.0);
  b.act(2, 10.0);
  EXPECT_EQ(b.open_rows(), (std::vector<RowAddr>{1}));
  EXPECT_EQ(b.stats().ignored_commands, 1u);
}

TEST_F(BankTest, CrossSubarrayApaDoesNotMergeGroups) {
  Bank& b = bank();
  const auto rows = static_cast<RowAddr>(chip_.layout().rows());
  b.act(0, 0.0);
  b.pre(3.0);
  b.act(rows + 5, 6.0);  // second ACT in the next subarray.
  EXPECT_EQ(b.open_rows(), (std::vector<RowAddr>{rows + 5}));
  EXPECT_EQ(b.stats().simultaneous_activations, 0u);
}

TEST_F(BankTest, RefreshRequiresPrechargedBank) {
  Bank& b = bank();
  b.act(0, 0.0);
  b.refresh(10.0);
  EXPECT_EQ(b.stats().refreshes, 0u);
  EXPECT_GE(b.stats().ignored_commands, 1u);
  b.pre(50.0);
  b.refresh(100.0);  // precharge had settled.
  EXPECT_EQ(b.stats().refreshes, 1u);
}

TEST_F(BankTest, RowAddressingHelpers) {
  Bank& b = bank();
  const auto rows = static_cast<RowAddr>(chip_.layout().rows());
  EXPECT_EQ(b.subarray_of(rows + 3), 1u);
  EXPECT_EQ(b.local_of(rows + 3), 3u);
  EXPECT_EQ(b.global_of(1, 3), rows + 3);
  EXPECT_THROW(b.act(static_cast<RowAddr>(
                         chip_.profile().geometry.rows_per_bank),
                     0.0),
               std::out_of_range);
}

TEST_F(BankTest, ConsecutiveWithShortT1FracsTheSource) {
  // PRE long before sense enable, then a consecutive ACT: the source row
  // was never restored, so it is left at ~VDD/2 and the destination opens
  // with its own data (no copy happened).
  Bank& b = bank();
  const BitVec source = random_row();
  const BitVec dest = random_row();
  b.backdoor_row(100) = source;
  b.backdoor_row(101) = dest;
  b.act(100, 0.0);
  b.pre(1.5);       // t1 = 1.5 < sense enable.
  b.act(101, 7.5);  // t2 = 6: consecutive regime.
  EXPECT_EQ(b.backdoor_row_state(100), RowState::kFrac);
  EXPECT_EQ(b.row_buffer(), dest);
}

TEST_F(BankTest, IntermediateT1BlendsCopyAndChargeShare) {
  // t1 = 6 ns: most sense amplifiers latched the source, a small fraction
  // resolves from the destinations' charge instead (Obs. 15's mechanism).
  Bank& b = bank();
  const BitVec source = random_row();
  const BitVec anti = ~source;
  const auto group = chip_.layout().activation_group(0, 7);
  for (RowAddr r : group) b.backdoor_row(r) = anti;
  b.backdoor_row(0) = source;
  b.act(0, 0.0);
  b.pre(6.0);       // partial SA latch.
  b.act(7, 9.0);    // t2 = 3: simultaneous.
  const std::size_t copied = b.row_buffer().matches(source);
  EXPECT_GT(copied, columns() * 90 / 100);  // mostly the source...
  EXPECT_LT(copied, columns());             // ...but not perfectly.
}

TEST_F(BankTest, WriteMasksAreCachedPerOpenSession) {
  // Two writes in one open session must see the same per-cell overdrive
  // mask (it is a persistent property, computed lazily once).
  Bank& b = bank();
  const BitVec zeros(columns(), false);
  for (RowAddr r : chip_.layout().activation_group(0, 7))
    b.backdoor_row(r) = zeros;
  b.act(0, 0.0);
  b.pre(3.0);
  b.act(7, 6.0);
  const BitVec first = random_row();
  b.write(0, first, 30.0);
  const BitVec after_first = b.backdoor_row(1);
  b.write(0, first, 60.0);  // identical data, second write.
  EXPECT_EQ(b.backdoor_row(1), after_first);
}

TEST(BankSamsung, GatesViolatedTimings) {
  Chip chip(VendorProfile::samsung(), 7);
  Bank& b = chip.bank(0);
  BitVec marker(chip.profile().geometry.columns);
  marker.fill_byte(0x5A);
  b.backdoor_row(0) = marker;
  b.act(0, 0.0);
  b.pre(3.0);
  b.act(7, 6.0);  // violated t2: the chip drops the PRE/ACT pair.
  EXPECT_EQ(b.open_rows(), (std::vector<RowAddr>{0}));
  EXPECT_EQ(b.stats().gated_commands, 1u);
  EXPECT_EQ(b.stats().simultaneous_activations, 0u);
  EXPECT_EQ(b.backdoor_row(0), marker);
}

}  // namespace
}  // namespace simra::dram
