#pragma once

#include <cstddef>

#include "dram/vendor.hpp"

namespace simra::casestudy {

/// The paper's §1 motivation, quantified with this repository's own
/// models: bulk bitwise work either moves every operand row over the
/// memory bus to the CPU and the result back, or executes in place with
/// majority operations. Both sides are derived from the same command
/// timings and power model — no external constants.
struct BulkBitwiseComparison {
  std::size_t operand_rows = 0;   ///< k input rows reduced into one.
  std::size_t row_bits = 0;

  // Processor path: k row reads + 1 row write over the bus (compute
  // itself is bandwidth-hidden).
  double cpu_time_ns = 0.0;
  double cpu_energy_pj = 0.0;

  // PUD path: MAJ3 AND-tree executed in-DRAM (gate staging + APA +
  // result copy per gate).
  std::size_t pud_operations = 0;
  double pud_time_ns = 0.0;
  double pud_energy_pj = 0.0;

  double speedup() const { return cpu_time_ns / pud_time_ns; }
  double energy_reduction() const { return cpu_energy_pj / pud_energy_pj; }
};

/// Compares a k-operand bitwise AND reduction over full rows.
BulkBitwiseComparison compare_bulk_and(const dram::VendorProfile& profile,
                                       std::size_t operands);

}  // namespace simra::casestudy
