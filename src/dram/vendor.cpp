#include "dram/vendor.hpp"

namespace simra::dram {

namespace {

Geometry geometry_x8(std::size_t subarray_rows) {
  Geometry g;
  g.banks = 16;
  g.rows_per_bank = 1u << 16;
  g.rows_per_subarray = subarray_rows;
  g.columns = 8192;  // 1 KiB page per x8 chip.
  return g;
}

Geometry geometry_x16() {
  Geometry g;
  g.banks = 16;
  g.rows_per_bank = 1u << 16;
  g.rows_per_subarray = 1024;
  g.columns = 16384;  // 2 KiB page per x16 chip.
  return g;
}

}  // namespace

VendorProfile VendorProfile::hynix_m() {
  VendorProfile p;
  p.manufacturer = "Mfr. H (SK Hynix)";
  p.short_name = "H";
  p.die_revision = 'M';
  p.density = "4Gb";
  p.org_width = 8;
  p.geometry = geometry_x8(512);
  p.timings = TimingParams::ddr4_2666();
  p.maj_margin_shift = +0.10;  // Mfr. H performs MAJ9 but not MAJ11 (§5).
  p.supports_frac = true;
  p.module_vendor = "TimeTec";
  p.module_identifier = "TLRD44G2666HC18F-SBK";
  p.chip_identifier = "H5AN4G8NMFR-TFC";
  p.modules_tested = 7;
  p.chips_per_module = 8;
  p.freq_mts = 2666;
  return p;
}

VendorProfile VendorProfile::hynix_m_scrambled() {
  VendorProfile p = hynix_m();
  p.scrambler =
      RowScrambler(RowScrambler::Kind::kBitReversal, /*local_bits=*/9);
  return p;
}

VendorProfile VendorProfile::hynix_m640() {
  VendorProfile p = hynix_m();
  p.geometry = geometry_x8(640);
  return p;
}

VendorProfile VendorProfile::hynix_a() {
  VendorProfile p;
  p.manufacturer = "Mfr. H (SK Hynix)";
  p.short_name = "H";
  p.die_revision = 'A';
  p.density = "4Gb";
  p.org_width = 8;
  p.geometry = geometry_x8(512);
  p.timings = TimingParams::ddr4_2133();
  p.maj_margin_shift = +0.10;
  p.supports_frac = true;
  p.module_vendor = "TeamGroup";
  p.module_identifier = "76TT21NUS1R8-4G";
  p.chip_identifier = "H5AN4G8NAFR-TFC";
  p.modules_tested = 5;
  p.chips_per_module = 8;
  p.freq_mts = 2133;
  return p;
}

VendorProfile VendorProfile::micron_e() {
  VendorProfile p;
  p.manufacturer = "Mfr. M (Micron)";
  p.short_name = "M";
  p.die_revision = 'E';
  p.density = "16Gb";
  p.org_width = 16;
  p.geometry = geometry_x16();
  p.timings = TimingParams::ddr4_3200();
  p.maj_margin_shift = -0.20;  // Mfr. M cannot perform MAJ9 (<1%, §5 fn 11).
  p.supports_frac = false;     // Footnote 5: Frac unsupported, SAs biased.
  p.sense_amp_bias = +1;
  p.module_vendor = "Micron";
  p.module_identifier = "MTA4ATF1G64HZ-3G2E1";
  p.chip_identifier = "MT40A1G16KD-062E:E";
  p.modules_tested = 4;
  p.chips_per_module = 4;
  p.freq_mts = 3200;
  p.mfr_date = "46-20";
  return p;
}

VendorProfile VendorProfile::micron_b() {
  VendorProfile p = micron_e();
  p.die_revision = 'B';
  p.timings = TimingParams::ddr4_2666();
  p.module_identifier = "MTA4ATF1G64HZ-3G2B2";
  p.chip_identifier = "MT40A1G16RC-062E:B";
  p.modules_tested = 2;
  p.chips_per_module = 4;
  p.freq_mts = 2666;
  p.mfr_date = "26-21";
  return p;
}

VendorProfile VendorProfile::samsung() {
  VendorProfile p;
  p.manufacturer = "Mfr. S (Samsung)";
  p.short_name = "S";
  p.die_revision = '?';
  p.density = "4Gb";
  p.org_width = 8;
  p.geometry = geometry_x8(512);
  p.gates_violated_timings = true;
  p.module_vendor = "Samsung";
  p.module_identifier = "(extended version)";
  p.chip_identifier = "(extended version)";
  p.modules_tested = 8;
  p.chips_per_module = 8;
  return p;
}

std::vector<VendorProfile> VendorProfile::all_tested() {
  return {hynix_m(), hynix_a(), micron_e(), micron_b()};
}

}  // namespace simra::dram
