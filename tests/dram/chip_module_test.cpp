#include <gtest/gtest.h>

#include "dram/chip.hpp"
#include "dram/module.hpp"

namespace simra::dram {
namespace {

TEST(Chip, ConstructsBanksPerGeometry) {
  Chip chip(VendorProfile::hynix_m(), 1);
  EXPECT_EQ(chip.bank_count(), 16u);
  EXPECT_EQ(chip.layout().rows(), 512u);
  EXPECT_THROW((void)chip.bank(16), std::out_of_range);
}

TEST(Chip, MicronUses1024RowLayout) {
  Chip chip(VendorProfile::micron_e(), 1);
  EXPECT_EQ(chip.layout().rows(), 1024u);
  EXPECT_EQ(chip.profile().geometry.columns, 16384u);
}

TEST(Chip, SeedControlsVariation) {
  // Two chips with different seeds have different unstable-cell maps;
  // same seed -> identical behaviour.
  auto frac_pattern = [](std::uint64_t seed) {
    Chip chip(VendorProfile::hynix_m(), seed);
    Bank& b = chip.bank(0);
    b.act(1, 0.0);
    b.pre(1.5);
    b.act(2, 100.0);  // fracs row 1.
    b.pre(200.0);
    b.act(1, 300.0);  // senses the frac row -> offset-coloured data.
    return b.row_buffer();
  };
  EXPECT_EQ(frac_pattern(5).size(), 8192u);
  EXPECT_NE(frac_pattern(5).hamming_distance(frac_pattern(6)), 0u);
}

TEST(Chip, EnvironmentDefaults) {
  Chip chip(VendorProfile::hynix_a(), 1);
  EXPECT_DOUBLE_EQ(chip.env().temperature.value, 50.0);
  EXPECT_DOUBLE_EQ(chip.env().vpp.value, 2.5);
}

TEST(Chip, TotalStatsAggregatesBanks) {
  Chip chip(VendorProfile::hynix_m(), 1);
  chip.bank(0).act(0, 0.0);
  chip.bank(1).act(0, 0.0);
  chip.bank(1).pre(50.0);
  const CommandStats stats = chip.total_stats();
  EXPECT_EQ(stats.acts, 2u);
  EXPECT_EQ(stats.pres, 1u);
}

TEST(Module, BuildsProfileChipCount) {
  Module module(VendorProfile::micron_e(), 9);
  EXPECT_EQ(module.chip_count(), 4u);  // x16 modules carry 4 chips.
  Module hynix(VendorProfile::hynix_m(), 9);
  EXPECT_EQ(hynix.chip_count(), 8u);
  Module sampled(VendorProfile::hynix_m(), 9, 2);
  EXPECT_EQ(sampled.chip_count(), 2u);
  EXPECT_THROW((void)sampled.chip(2), std::out_of_range);
}

TEST(Module, ChipsHaveDistinctSeeds) {
  Module module(VendorProfile::hynix_m(), 1234, 3);
  EXPECT_NE(module.chip(0).seed(), module.chip(1).seed());
  EXPECT_NE(module.chip(1).seed(), module.chip(2).seed());
}

TEST(Module, EnvironmentPropagatesToAllChips) {
  Module module(VendorProfile::hynix_m(), 1, 2);
  module.set_temperature(Celsius{80.0});
  module.set_vpp(Volts{2.2});
  for (std::size_t i = 0; i < module.chip_count(); ++i) {
    EXPECT_DOUBLE_EQ(module.chip(i).env().temperature.value, 80.0);
    EXPECT_DOUBLE_EQ(module.chip(i).env().vpp.value, 2.2);
  }
}

TEST(Module, ForEachChipVisitsAll) {
  Module module(VendorProfile::hynix_a(), 1, 4);
  int visits = 0;
  module.for_each_chip([&](Chip&) { ++visits; });
  EXPECT_EQ(visits, 4);
}

TEST(Module, LabelEncodesVendorAndDie) {
  Module module(VendorProfile::hynix_m(), 0x1234);
  EXPECT_EQ(module.label().substr(0, 2), "HM");
}

}  // namespace
}  // namespace simra::dram
