#include "bender/executor.hpp"

#include <algorithm>
#include <stdexcept>

#include "bender/command_encoding.hpp"
#include "fault/injector.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "verify/analyzer.hpp"
#include "verify/lint.hpp"

namespace simra::bender {

namespace {

using dram::PowerOp;

/// Command-slot span for the observability trace: the command as issued
/// (virtual time, nominal per-kind duration) with its bank/row or
/// bank/column operands. Virtual timestamps make the recorded trace a
/// pure function of the program, independent of scheduling.
void trace_command(const TimedCommand& cmd, double t,
                   const dram::TimingParams& timings) {
  obs::CommandSpan span;
  span.ts_ns = t;
  span.bank = static_cast<std::int32_t>(cmd.bank);
  switch (cmd.kind) {
    case CommandKind::kAct:
      span.name = "ACT";
      span.dur_ns = static_cast<float>(timings.tRCD.value);
      span.op = static_cast<std::uint32_t>(cmd.row);
      break;
    case CommandKind::kPre:
      span.name = cmd.a10 ? "PREA" : "PRE";
      span.dur_ns = static_cast<float>(timings.tRP.value);
      break;
    case CommandKind::kWr:
      span.name = "WR";
      span.dur_ns = static_cast<float>(timings.tCCD.value);
      span.op = static_cast<std::uint32_t>(cmd.col);
      break;
    case CommandKind::kRd:
      span.name = "RD";
      span.dur_ns = static_cast<float>(timings.tCCD.value);
      span.op = static_cast<std::uint32_t>(cmd.col);
      break;
    case CommandKind::kRef:
      span.name = "REF";
      span.dur_ns = static_cast<float>(timings.tRFC.value);
      span.bank = -1;
      break;
  }
  obs::record_command(span);
}

double command_energy(const TimedCommand& cmd, const dram::Chip& chip,
                      double n_open_rows) {
  // Rough per-command energy from the average-power model; command
  // durations follow the nominal timings.
  const auto& t = chip.profile().timings;
  switch (cmd.kind) {
    case CommandKind::kAct:
      return dram::PowerModel::energy_pj(
          PowerOp::kManyRowActivation, Nanoseconds{t.tRCD.value},
          static_cast<std::size_t>(n_open_rows > 0 ? n_open_rows : 1));
    case CommandKind::kPre:
      return dram::PowerModel::energy_pj(PowerOp::kActPre,
                                         Nanoseconds{t.tRP.value}) *
             0.5;
    case CommandKind::kWr:
      return dram::PowerModel::energy_pj(PowerOp::kWrite,
                                         Nanoseconds{t.tCCD.value});
    case CommandKind::kRd:
      return dram::PowerModel::energy_pj(PowerOp::kRead,
                                         Nanoseconds{t.tCCD.value});
    case CommandKind::kRef:
      return dram::PowerModel::energy_pj(PowerOp::kRefresh,
                                         Nanoseconds{t.tRFC.value});
  }
  return 0.0;
}

/// Flips one bit of the 27-bit command word: pins 0..4 are the control
/// strobes (CS_n, ACT_n, RAS_n, CAS_n, WE_n), 5..22 the address bits
/// A0..A17, 23..24 BG[1:0], 25..26 BA[1:0].
void flip_command_pin(PinState& pins, int pin) {
  switch (pin) {
    case 0: pins.cs_n = !pins.cs_n; return;
    case 1: pins.act_n = !pins.act_n; return;
    case 2: pins.ras_n = !pins.ras_n; return;
    case 3: pins.cas_n = !pins.cas_n; return;
    case 4: pins.we_n = !pins.we_n; return;
    default: break;
  }
  if (pin < 23) {
    pins.address ^= 1u << (pin - 5);
  } else if (pin < 25) {
    pins.bank_group ^= static_cast<std::uint8_t>(1u << (pin - 23));
  } else {
    pins.bank ^= static_cast<std::uint8_t>(1u << (pin - 25));
  }
}

}  // namespace

Executor::Executor(dram::Chip* chip) : chip_(chip) {
  if (chip_ == nullptr) throw std::invalid_argument("executor needs a chip");
}

void Executor::execute_one(const TimedCommand& cmd, double t,
                           ExecutionResult& result) {
  dram::Bank& bank = chip_->bank(cmd.bank);
  switch (cmd.kind) {
    case CommandKind::kAct:
      bank.act(cmd.row, t);
      break;
    case CommandKind::kPre:
      if (cmd.a10) {
        // PREA: A10 high precharges every bank.
        for (std::size_t b = 0; b < chip_->bank_count(); ++b)
          chip_->bank(static_cast<dram::BankId>(b)).pre(t);
      } else {
        bank.pre(t);
      }
      break;
    case CommandKind::kWr:
      bank.write(cmd.col, cmd.data, t);
      if (cmd.a10) bank.pre(t);  // auto-precharge after the column access.
      break;
    case CommandKind::kRd:
      result.reads.push_back(bank.read(cmd.col, cmd.nbits, t));
      if (cmd.a10) bank.pre(t);
      break;
    case CommandKind::kRef:
      for (std::size_t b = 0; b < chip_->bank_count(); ++b)
        chip_->bank(static_cast<dram::BankId>(b)).refresh(t);
      break;
  }
  result.energy_pj += command_energy(
      cmd, *chip_, static_cast<double>(bank.open_rows().size()));
}

/// The injected-fault command path. Dropped or corrupted commands never
/// crash the host: RD payloads the chip did not produce are replaced with
/// deterministic garbage so the burst framing (one payload per original
/// RD) survives, addresses are clamped into the device's ranges, and
/// jittered issue times are clamped to stay monotonic.
void Executor::run_faulty(const TimedCommand& cmd, ExecutionResult& result) {
  const fault::TransportDecision d = faults_->next_transport(kCommandWordBits);
  double t = clock_ns_ + cmd.time_ns() +
             static_cast<double>(d.jitter_slots) * kSlotNs;
  t = std::max(t, last_issue_ns_);
  last_issue_ns_ = t;

  const auto push_garbage = [&] {
    if (cmd.kind != CommandKind::kRd) return;
    BitVec garbage(cmd.nbits);
    for (std::size_t w = 0; w < garbage.word_count(); ++w)
      garbage.set_word(w, faults_->garbage_word());
    result.reads.push_back(std::move(garbage));
  };

  if (!d.deliver) {
    push_garbage();
    return;
  }

  if (d.flip_pin < 0) {
    const int copies = d.duplicate ? 2 : 1;
    for (int i = 0; i < copies; ++i) {
      if (cmd.kind == CommandKind::kRd) {
        // A duplicated RD produces two bursts on the bus; the host keeps
        // only the one it asked for.
        try {
          BitVec payload = chip_->bank(cmd.bank).read(cmd.col, cmd.nbits, t);
          if (i == 0) result.reads.push_back(std::move(payload));
        } catch (const std::logic_error&) {
          // RD against a closed bank (an earlier ACT was dropped): the
          // bus returns garbage, not an abort.
          if (i == 0) push_garbage();
        }
        result.energy_pj += command_energy(cmd, *chip_, 0.0);
      } else {
        execute_one(cmd, t, result);
      }
    }
    return;
  }

  // Corrupted command word: encode, flip the faulted pin, decode what the
  // chip actually latches.
  PinState pins = CommandEncoder::encode(cmd);
  flip_command_pin(pins, d.flip_pin);
  const CommandEncoder::Decoded decoded = CommandEncoder::decode(pins);
  const auto& geom = chip_->profile().geometry;
  const dram::BankId bank_id =
      static_cast<dram::BankId>(decoded.bank % chip_->bank_count());
  dram::Bank& bank = chip_->bank(bank_id);
  const int copies = d.duplicate ? 2 : 1;
  using Kind = CommandEncoder::Decoded::Kind;
  for (int i = 0; i < copies; ++i) {
    switch (decoded.kind) {
      case Kind::kDeselect:
      case Kind::kUnknown:
        // The chip sees no (or an illegal) command; nothing executes.
        break;
      case Kind::kActivate:
        bank.act(decoded.row % geom.rows_per_bank, t);
        break;
      case Kind::kPrecharge:
        bank.pre(t);
        break;
      case Kind::kPrechargeAll:
        for (std::size_t b = 0; b < chip_->bank_count(); ++b)
          chip_->bank(static_cast<dram::BankId>(b)).pre(t);
        break;
      case Kind::kRefresh:
        for (std::size_t b = 0; b < chip_->bank_count(); ++b)
          chip_->bank(static_cast<dram::BankId>(b)).refresh(t);
        break;
      case Kind::kRead: {
        const std::size_t nbits =
            cmd.kind == CommandKind::kRd ? cmd.nbits : 64;
        std::size_t col = static_cast<std::size_t>(decoded.column) * 64;
        if (col + nbits > geom.columns)
          col = geom.columns >= nbits ? geom.columns - nbits : 0;
        try {
          BitVec payload = bank.read(
              static_cast<dram::ColAddr>(col),
              std::min(nbits, geom.columns), t);
          if (i == 0 && cmd.kind == CommandKind::kRd)
            result.reads.push_back(std::move(payload));
        } catch (const std::logic_error&) {
          if (i == 0) push_garbage();
        }
        // A flipped-high A10 turns the RD into RDA: the row closes.
        if (decoded.auto_precharge) bank.pre(t);
        break;
      }
      case Kind::kWrite: {
        const BitVec* data = cmd.kind == CommandKind::kWr ? &cmd.data : nullptr;
        BitVec garbage;
        if (data == nullptr) {
          garbage = BitVec(64);
          garbage.set_word(0, faults_->garbage_word());
          data = &garbage;
        }
        std::size_t col = static_cast<std::size_t>(decoded.column) * 64;
        if (col + data->size() > geom.columns)
          col = geom.columns >= data->size() ? geom.columns - data->size() : 0;
        bank.write(static_cast<dram::ColAddr>(col), *data, t);
        if (decoded.auto_precharge) bank.pre(t);
        break;
      }
    }
  }
  // The original RD's payload slot must be filled even when the flip
  // turned it into something else.
  if (decoded.kind != Kind::kRead && cmd.kind == CommandKind::kRd)
    push_garbage();
  result.energy_pj += command_energy(cmd, *chip_, 0.0);
}

verify::ProgramContext Executor::program_context() {
  if (!rule_table_) {
    rule_table_.emplace(verify::RuleTable::ddr4(chip_->profile().timings));
  }
  verify::ProgramContext ctx;
  ctx.table = &*rule_table_;
  ctx.layout = &chip_->layout();
  ctx.scrambler = &chip_->profile().scrambler;
  ctx.columns = chip_->profile().geometry.columns;
  ctx.gates_violated_timings = chip_->profile().gates_violated_timings;
  return ctx;
}

ExecutionResult Executor::run(const Program& program) {
  // Static analysis happens before any command reaches the (possibly
  // faulty) transport: the gate checks what the program *intends* to
  // issue, not what a bit-flip turns it into.
  verify::gate(program, chip_->profile().timings);
  last_opt_ = verify::OptStats{};
  const Program* to_run = &program;
  std::optional<Program> optimized;
  const verify::OptMode opt = verify::global_opt_mode();
  if (opt != verify::OptMode::kOff && !program.empty()) {
    const verify::ProgramContext ctx = program_context();
    verify::lint(program, ctx);
    // Transformation only where it is provably invisible: dead-command
    // elimination changes the chip's per-command RNG/fault draw sequence,
    // so any attached injector (transport or chip level) disables it.
    if (opt == verify::OptMode::kOn && faults_ == nullptr &&
        chip_->faults() == nullptr) {
      verify::Optimized result = verify::optimize(program, ctx);
      last_opt_ = result.stats;
      if (result.stats.removed_commands > 0 ||
          (result.stats.compacted &&
           result.stats.extent_after < result.stats.extent_before)) {
        optimized.emplace(std::move(result.program));
        to_run = &*optimized;
        // The optimizer must never manufacture a timing violation: the
        // transformed program passes the same gate as the original.
        verify::gate(*to_run, chip_->profile().timings);
        auto& registry = obs::MetricsRegistry::instance();
        registry.counter("verify.opt.programs").add_count(1);
        registry.counter("verify.opt.removed_commands")
            .add_count(last_opt_.removed_commands);
        registry.counter("verify.opt.slots_saved")
            .add_count(last_opt_.extent_before - last_opt_.extent_after);
        obs::emit_event(
            "program_opt",
            {{"program", program.name()},
             {"removed_commands",
              std::to_string(last_opt_.removed_commands)},
             {"extent_before", std::to_string(last_opt_.extent_before)},
             {"extent_after", std::to_string(last_opt_.extent_after)}});
      }
    }
  }
  ExecutionResult result;
  const bool faulty = faults_ != nullptr && faults_->spec().any_transport();
  const bool traced = obs::enabled();
  for (const TimedCommand& cmd : to_run->commands()) {
    // The trace records the command as *issued* (pre-fault): a corrupted
    // transport changes what the chip latches, not what the span shows —
    // matching DRAM Bender's host-side command log.
    if (traced)
      trace_command(cmd, clock_ns_ + cmd.time_ns(),
                    chip_->profile().timings);
    if (faulty) {
      run_faulty(cmd, result);
    } else {
      const double t = clock_ns_ + cmd.time_ns();
      last_issue_ns_ = t;
      execute_one(cmd, t, result);
    }
  }
  result.duration_ns = to_run->duration_ns();
  clock_ns_ += result.duration_ns;
  return result;
}

void Executor::idle(Nanoseconds gap) {
  if (gap.value < 0.0) throw std::invalid_argument("idle gap must be >= 0");
  clock_ns_ += gap.value;
}

}  // namespace simra::bender
