#include "dram/electrical.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "common/prof.hpp"
#include "common/rng.hpp"
#include "dram/calibration.hpp"
#include "dram/kernels.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"

namespace simra::dram {

namespace {

// Salts keying the independent persistent-variation fields.
constexpr std::uint64_t kSaltMajOffset = 0x10;
constexpr std::uint64_t kSaltMajGroup = 0x11;
constexpr std::uint64_t kSaltMajPolarity = 0x12;
constexpr std::uint64_t kSaltSmraOffset = 0x20;
constexpr std::uint64_t kSaltSmraGroup = 0x21;
constexpr std::uint64_t kSaltCopyOffset = 0x30;
constexpr std::uint64_t kSaltCopyGroup = 0x31;
constexpr std::uint64_t kSaltLatchRace = 0x40;
constexpr std::uint64_t kSaltFracSense = 0x50;

constexpr double kLowTimingNs = 1.6;  // "1.5 ns" slot, with float slack.

double env_gain(const EnvironmentState& env) {
  const auto& p = calib::kMajx;
  const double temp_factor =
      1.0 + p.temp_gain_slope * (env.temperature.value - 50.0);
  const double vpp_factor =
      1.0 - p.vpp_gain_slope * (2.5 - env.vpp.value);
  return p.gain * temp_factor * vpp_factor;
}

}  // namespace

namespace calib {

double mrc_latch_fraction(double t1_ns) {
  // Piecewise-linear SA latch race vs t1: nothing latched before the
  // sense-enable point, ~everything by tRAS.
  struct Point {
    double t;
    double f;
  };
  static constexpr Point kPoints[] = {
      {4.0, 0.30}, {6.0, 0.995}, {12.0, 0.999}, {18.0, 0.9995}, {36.0, 1.0}};
  if (t1_ns < kPoints[0].t) return 0.0;
  for (std::size_t i = 1; i < std::size(kPoints); ++i) {
    if (t1_ns <= kPoints[i].t) {
      const auto& a = kPoints[i - 1];
      const auto& b = kPoints[i];
      return a.f + (b.f - a.f) * (t1_ns - a.t) / (b.t - a.t);
    }
  }
  return 1.0;
}

}  // namespace calib

std::size_t ElectricalModel::DeviateKeyHash::operator()(
    const DeviateKey& k) const noexcept {
  return static_cast<std::size_t>(
      hash_combine(hash_combine(hash_combine(hash_combine(k.salt, k.k1), k.k2),
                                k.count),
                   k.uniform ? 1u : 0u));
}

std::size_t SharedDeviateCache::KeyHash::operator()(
    const Key& k) const noexcept {
  return static_cast<std::size_t>(
      hash_combine(hash_combine(hash_combine(hash_combine(k.salt, k.k1), k.k2),
                                k.count),
                   k.uniform ? 1u : 0u));
}

namespace {

/// Recycles span storage across models and chip tasks: a released span
/// returns its block here instead of freeing it, and the next fill of the
/// same size reuses it. First-touch page faults on a fresh 32 KiB block
/// cost ~2-3x the fill itself, so steady-state fills writing into
/// already-faulted pages are the difference between ~40 us and ~15 us per
/// span. Thread-safe; the free list is capped, overflow is freed for real.
class SpanPool {
 public:
  static SpanPool& instance() {
    static SpanPool pool;
    return pool;
  }

  std::shared_ptr<float[]> acquire(std::size_t count) {
    float* block = nullptr;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = free_.find(count);
      if (it != free_.end() && !it->second.empty()) {
        block = it->second.back();
        it->second.pop_back();
        total_free_ -= count;
      }
    }
    // Recycle stats ride the obs counter registry (cached refs, relaxed
    // increments): acquire only runs on span-cache misses, so the
    // bookkeeping is far off the per-trial path.
    static prof::Counter& hit_counter = prof::Counter::get("dram/span_pool_hit");
    static prof::Counter& miss_counter =
        prof::Counter::get("dram/span_pool_miss");
    if (block == nullptr) {
      block = new float[count];
      miss_counter.add_count(1);
      misses_.fetch_add(1, std::memory_order_relaxed);
    } else {
      hit_counter.add_count(1);
      hits_.fetch_add(1, std::memory_order_relaxed);
    }
    return std::shared_ptr<float[]>(
        block, [count](float* p) { SpanPool::instance().release(p, count); });
  }

  SpanPoolStats stats() const noexcept {
    return {hits_.load(std::memory_order_relaxed),
            misses_.load(std::memory_order_relaxed)};
  }

  ~SpanPool() {
    for (auto& [count, blocks] : free_)
      for (float* p : blocks) delete[] p;
  }

 private:
  void release(float* block, std::size_t count) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (total_free_ + count <= kMaxFreeFloats) {
        free_[count].push_back(block);
        total_free_ += count;
        return;
      }
    }
    delete[] block;
  }

  /// Free-list cap (floats): 64 Mi floats = 256 MiB of idle blocks.
  static constexpr std::size_t kMaxFreeFloats = 64u << 20;

  std::mutex mutex_;
  std::unordered_map<std::size_t, std::vector<float*>> free_;
  std::size_t total_free_ = 0;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace

SpanPoolStats span_pool_stats() noexcept { return SpanPool::instance().stats(); }

std::shared_ptr<const float[]> SharedDeviateCache::get_or_compute(
    std::uint64_t salt, std::uint64_t k1, std::uint64_t k2, std::size_t count,
    bool uniform, const VariationField& field) {
  constexpr std::size_t kCapacity = 8192;  // bound memory.
  const Key key{salt, k1, k2, count, uniform};
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    order_.splice(order_.end(), order_, it->second.order_it);
    return it->second.values;
  }
  SIMRA_PROF_SCOPE("electrical/deviates_miss");
  while (map_.size() >= kCapacity) {
    map_.erase(order_.front());
    order_.pop_front();
  }
  std::shared_ptr<float[]> values = SpanPool::instance().acquire(count);
  const std::span<float> out(values.get(), count);
  if (uniform)
    field.uniform_fill(salt, k1, k2, out);
  else
    field.normal_fill(salt, k1, k2, out);
  order_.push_back(key);
  map_.emplace(key, Entry{values, std::prev(order_.end())});
  return values;
}

std::span<const float> ElectricalModel::deviates(std::uint64_t salt,
                                                 std::uint64_t k1,
                                                 std::uint64_t k2,
                                                 std::size_t count) const {
  return spans(salt, k1, k2, count, false);
}

std::span<const float> ElectricalModel::uniforms(std::uint64_t salt,
                                                 std::uint64_t k1,
                                                 std::uint64_t k2,
                                                 std::size_t count) const {
  return spans(salt, k1, k2, count, true);
}

std::span<const float> ElectricalModel::spans(std::uint64_t salt,
                                              std::uint64_t k1,
                                              std::uint64_t k2,
                                              std::size_t count,
                                              bool uniform) const {
  constexpr std::size_t kCapacity = 4096;  // bound memory.
  const DeviateKey key{salt, k1, k2, count, uniform};
  auto it = deviate_cache_.find(key);
  if (it != deviate_cache_.end()) {
    // Refresh recency so hot spans survive trimming.
    deviate_order_.splice(deviate_order_.end(), deviate_order_,
                          it->second.order_it);
    return {it->second.values.get(), count};
  }
  std::shared_ptr<const float[]> values;
  if (shared_deviates_ != nullptr) {
    values = shared_deviates_->get_or_compute(salt, k1, k2, count, uniform,
                                              *variation_);
  } else {
    SIMRA_PROF_SCOPE("electrical/deviates_miss");
    std::shared_ptr<float[]> computed = SpanPool::instance().acquire(count);
    const std::span<float> out(computed.get(), count);
    if (uniform)
      variation_->uniform_fill(salt, k1, k2, out);
    else
      variation_->normal_fill(salt, k1, k2, out);
    values = std::move(computed);
  }
  while (deviate_cache_.size() >= kCapacity) {
    deviate_cache_.erase(deviate_order_.front());
    deviate_order_.pop_front();
  }
  deviate_order_.push_back(key);
  it = deviate_cache_
           .emplace(key, DeviateEntry{std::move(values),
                                      std::prev(deviate_order_.end())})
           .first;
  return {it->second.values.get(), count};
}

std::size_t ElectricalModel::MaskKeyHash::operator()(
    const MaskKey& k) const noexcept {
  return static_cast<std::size_t>(
      hash_combine(hash_combine(hash_combine(hash_combine(k.salt, k.k1), k.k2),
                                k.count),
                   k.z_bits));
}

const BitVec& ElectricalModel::threshold_mask_cached(std::uint64_t salt,
                                                     std::uint64_t k1,
                                                     std::uint64_t k2,
                                                     std::size_t count,
                                                     float z_eff) const {
  constexpr std::size_t kCapacity = 4096;  // bound memory.
  const MaskKey key{salt, k1, k2, count, std::bit_cast<std::uint32_t>(z_eff)};
  auto it = threshold_mask_cache_.find(key);
  if (it != threshold_mask_cache_.end()) {
    threshold_mask_order_.splice(threshold_mask_order_.end(),
                                 threshold_mask_order_, it->second.order_it);
    return it->second.mask;
  }
  // Compared in the uniform domain: zeta < z_eff <=> u < normal_cdf(z_eff)
  // (the deviate is inverse_normal_cdf(u) and the CDF is monotone), so the
  // span fill skips the inverse CDF — by far the dominant cost of a miss.
  // No chip-level memo here: the slot scheduler hands each slot a disjoint
  // (bank, row) slice, so mask keys never repeat across sibling models and
  // a shared map would only add lock traffic (measured zero hits).
  const std::span<const float> us = uniforms(salt, k1, k2, count);
  const auto u_eff =
      static_cast<float>(normal_cdf(static_cast<double>(z_eff)));
  BitVec mask_bits(0);
  {
    SIMRA_PROF_SCOPE("electrical/threshold_mask_compute");
    mask_bits = kernels::threshold_mask(us, u_eff);
  }
  while (threshold_mask_cache_.size() >= kCapacity) {
    threshold_mask_cache_.erase(threshold_mask_order_.front());
    threshold_mask_order_.pop_front();
  }
  threshold_mask_order_.push_back(key);
  return threshold_mask_cache_
      .emplace(key, MaskEntry{std::move(mask_bits),
                              std::prev(threshold_mask_order_.end())})
      .first->second.mask;
}

std::uint64_t group_key_of(std::span<const RowAddr> rows) {
  std::uint64_t key = hash64(rows.size());
  for (RowAddr r : rows) key = hash_combine(key, r);
  return key;
}

ElectricalModel::ElectricalModel(const VendorProfile* profile,
                                 const VariationField* variation)
    : profile_(profile), variation_(variation) {
  if (profile_ == nullptr || variation_ == nullptr)
    throw std::invalid_argument("electrical model needs profile and variation");
}

ApaDecision ElectricalModel::classify_apa(Nanoseconds t1, Nanoseconds t2) const {
  const auto& maj = calib::kMajx;
  const auto& smra = calib::kSmra;
  ApaDecision d;
  d.regime = ApaRegime::kSimultaneous;
  d.latch_fraction = calib::mrc_latch_fraction(t1.value);
  d.sa_latched = d.latch_fraction > 0.0;

  if (!d.sa_latched) {
    // Charge-share (MAJ) regime: the longer the first row stays connected
    // alone, the more charge it transfers relative to the second group.
    d.first_row_extra_weight =
        maj.asym_weight_per_ns *
        std::max(0.0, t1.value + t2.value - maj.asym_baseline_ns);
  }
  if (t2.value <= kLowTimingNs) {
    d.second_group_weight = maj.weak_t2_row_weight;
    d.row_dropout_probability = smra.dropout_t2_low;
    d.majx_z_penalty += maj.weak_t2_z_penalty;
    d.smra_z_penalty += smra.penalty_t2_low;
  }
  if (t1.value <= kLowTimingNs) d.smra_z_penalty += smra.penalty_t1_low;
  if (t1.value + t2.value < 4.5) d.smra_z_penalty += smra.penalty_sum_low;
  return d;
}

double ElectricalModel::group_quality(const BitlineContext& ctx,
                                      std::uint64_t salt) const {
  double sigma = 0.0;
  switch (salt) {
    case kSaltMajGroup:
      sigma = calib::kMajx.group_sigma;
      break;
    case kSaltSmraGroup:
      sigma = calib::kSmra.group_sigma;
      break;
    case kSaltCopyGroup:
      sigma = calib::kMrc.group_sigma;
      break;
    default:
      throw std::logic_error("unknown group-quality salt");
  }
  const double deviate =
      variation_->normal(salt, ctx.bank, ctx.subarray, ctx.group_key);
  return std::exp(sigma * deviate);
}

double ElectricalModel::estimate_pattern_noise(
    std::span<const ConnectedRow> rows) {
  SIMRA_PROF_SCOPE("electrical/estimate_pattern_noise");
  // Byte-periodic (fixed) data perturbs neighbouring bitlines coherently
  // along the run and its coupling cancels; aperiodic (random) data does
  // not. Measured as the lag-8 bit disagreement of the stored data,
  // sampled every 16th position — word-shift/XOR form of probing
  // get(c) != get(c + 8) bit by bit.
  std::size_t disagree = 0;
  std::size_t total = 0;
  for (const ConnectedRow& row : rows) {
    if (row.data == nullptr) continue;
    disagree += kernels::lag8_disagreement(*row.data, total);
  }
  if (total == 0) return 0.0;
  return std::min(0.5, static_cast<double>(disagree) / static_cast<double>(total));
}

namespace {

/// Resolution precomputed for one discrete per-column sum value: the
/// gain/pow/threshold chain is a pure function of the sum, so it runs
/// once per distinct value instead of once per column.
struct SumClass {
  bool computed = false;
  bool tie = false;
  bool majority_one = false;
  double zg = 0.0;  ///< z / g, compared against the column's zeta deviate.
};

/// Parameters of the per-sum margin math, captured once per resolve.
struct MarginMath {
  double gain = 0.0;
  double g = 1.0;
  double noise_denominator = 1.0;
  double threshold = 0.0;
  double vendor_shift = 0.0;
  double majx_z_penalty = 0.0;
  double n_connected = 0.0;
};

/// Computes one class entry with exactly the per-column math of the
/// scalar loop (double-promoted float sum in, z/g threshold out).
SumClass make_sum_class(float fsum, const MarginMath& m) {
  const auto& p = calib::kMajx;
  SumClass e;
  e.computed = true;
  const double sum = fsum;
  if (std::abs(sum) < 1e-9) {
    e.tie = true;
    return e;
  }
  e.majority_one = sum > 0.0;
  const double x =
      m.gain * std::pow(std::abs(sum) / (p.cap_ratio + m.n_connected),
                        p.margin_exponent);
  const double z = (x - m.threshold) / m.noise_denominator -
                   m.majx_z_penalty + m.vendor_shift;
  e.zg = z / m.g;
  return e;
}

/// Folds the per-column accumulation sequence of a (lead, odd, tail)
/// weight-class combination: `n_lead` rows of `tw_common` set before the
/// odd-weight row, the odd row itself when `has_odd`, then `n_tail` more
/// common rows — the exact float-addition order of the scalar loop over
/// rows, which is what makes the per-class sums bit-identical to it.
float fold_class_sum(float total_weight, std::size_t n_lead, bool has_odd,
                     float tw_odd, std::size_t n_tail, float tw_common) {
  float sum = -total_weight;
  for (std::size_t i = 0; i < n_lead; ++i) sum += tw_common;
  if (has_odd) sum += tw_odd;
  for (std::size_t i = 0; i < n_tail; ++i) sum += tw_common;
  return sum;
}

/// Sense-margin (z/g) bucket edges, shared by the registry histogram and
/// the stack-local tally below.
constexpr std::array<double, 11> kMarginBounds = {-3,    -2,   -1, -0.5,
                                                  -0.25, 0,    0.25, 0.5,
                                                  1,     2,    3};

obs::Histogram& margin_hist() {
  static obs::Histogram& hist = obs::MetricsRegistry::instance().histogram(
      "electrical/sense_margin",
      std::vector<double>(kMarginBounds.begin(), kMarginBounds.end()));
  return hist;
}

/// Sense-margin (z/g) distribution tally for one resolve call. The
/// per-class loop runs for every sensing operation, so it accumulates
/// into this stack-local array (weighted by the class's column count —
/// totals match the per-column loop the class math replaced) and merges
/// into the shared histogram once per call, keeping atomic traffic out
/// of the hot loop. Callers gate on obs::enabled().
struct MarginBatch {
  std::array<std::uint64_t, kMarginBounds.size() + 1> counts{};
  double sum = 0.0;
  std::uint64_t n = 0;

  void add(double zg, std::uint64_t weight) {
    // First bound >= zg, same bucketing as Histogram::observe.
    std::size_t b = 0;
    while (b < kMarginBounds.size() && zg > kMarginBounds[b]) ++b;
    counts[b] += weight;
    sum += zg * static_cast<double>(weight);
    n += weight;
  }

  void flush() {
    if (n == 0) return;
    margin_hist().merge(counts, sum, n);
    counts.fill(0);
    sum = 0.0;
    n = 0;
  }
};

}  // namespace

ChargeShareResult ElectricalModel::resolve_charge_share(
    const BitlineContext& ctx, std::span<const ConnectedRow> rows,
    double pattern_noise, const EnvironmentState& env, const ApaDecision& apa,
    Rng& rng) const {
  SIMRA_PROF_SCOPE("electrical/resolve_charge_share");
  const bool obs_margins = obs::enabled();
  MarginBatch margins;
  const auto& p = calib::kMajx;
  const std::size_t columns = ctx.columns;

  ChargeShareResult out;
  out.resolved = BitVec(columns);
  out.stable = BitVec(columns);

  MarginMath m;
  m.n_connected = static_cast<double>(rows.size());
  m.gain = env_gain(env);
  m.g = group_quality(ctx, kSaltMajGroup);
  m.noise_denominator = std::sqrt(1.0 + m.n_connected * p.cell_noise);
  m.threshold = p.threshold + p.coupling * pattern_noise;
  m.vendor_shift = profile_->maj_margin_shift;
  m.majx_z_penalty = apa.majx_z_penalty;

  // Rows fall into weight classes (the first-activated row vs the rest),
  // so each column's signed float sum — accumulated row by row in the
  // scalar model — takes one value per (set bits before the odd-weight
  // row, odd row's bit, set bits after) combination. Classify every
  // column with bit-sliced popcounts, then run the pow/threshold chain
  // once per class.
  float total_weight = 0.0f;
  std::vector<const BitVec*> data_rows;
  std::vector<float> twice_w;
  data_rows.reserve(rows.size());
  twice_w.reserve(rows.size());
  for (const ConnectedRow& row : rows) {
    if (row.data == nullptr) continue;  // Frac row: capacitance only.
    total_weight += static_cast<float>(row.weight);
    data_rows.push_back(row.data);
    twice_w.push_back(2.0f * static_cast<float>(row.weight));
  }
  const std::size_t k = data_rows.size();

  // Weight-class shape: all rows equal, or exactly one odd row among
  // equals. Anything richer (3+ classes) falls back to the scalar loop.
  bool all_equal = true;
  for (std::size_t i = 1; i < k; ++i)
    if (twice_w[i] != twice_w[0]) all_equal = false;
  std::size_t odd_index = k;  // k = no odd row.
  bool two_class = false;
  if (!all_equal && k >= 2) {
    for (std::size_t candidate = 0; candidate < k && !two_class; ++candidate) {
      bool rest_equal = true;
      float common = 0.0f;
      bool have_common = false;
      for (std::size_t i = 0; i < k; ++i) {
        if (i == candidate) continue;
        if (!have_common) {
          common = twice_w[i];
          have_common = true;
        } else if (twice_w[i] != common) {
          rest_equal = false;
          break;
        }
      }
      if (rest_equal && twice_w[candidate] != common) {
        two_class = true;
        odd_index = candidate;
      }
    }
  }

  const std::span<const float> zetas =
      deviates(kSaltMajOffset, ctx.bank, ctx.subarray, columns);
  const std::span<const float> polarities =
      deviates(kSaltMajPolarity, ctx.bank, ctx.subarray, columns);

  bool full_width = true;
  for (const BitVec* row : data_rows)
    if (row->size() < columns) full_width = false;

  if ((all_equal || two_class) && k <= 63 && full_width) {
    // Per-column class indices from bit-sliced popcounts.
    std::vector<std::uint8_t> lead_counts(columns, 0);
    std::vector<std::uint8_t> tail_counts;
    const BitVec* odd_row = nullptr;
    float tw_common = k > 0 ? twice_w[0] : 0.0f;
    std::size_t n_lead_rows = k;
    std::size_t n_tail_rows = 0;
    if (two_class) {
      odd_row = data_rows[odd_index];
      tw_common = twice_w[odd_index == 0 ? 1 : 0];
      n_lead_rows = odd_index;
      n_tail_rows = k - odd_index - 1;
      tail_counts.assign(columns, 0);
      kernels::column_popcounts(
          std::span<const BitVec* const>(data_rows.data(), n_lead_rows),
          lead_counts);
      kernels::column_popcounts(
          std::span<const BitVec* const>(data_rows.data() + odd_index + 1,
                                         n_tail_rows),
          tail_counts);
    } else if (k > 0) {
      kernels::column_popcounts(
          std::span<const BitVec* const>(data_rows.data(), k), lead_counts);
    }

    const float tw_odd = two_class ? twice_w[odd_index] : 0.0f;
    const std::size_t tail_span = n_tail_rows + 1;
    const std::size_t n_classes =
        two_class ? (n_lead_rows + 1) * tail_span * 2 : n_lead_rows + 1;

    // Pass 1: per-column class index plus per-class column counts — the
    // only per-column state the margin math needs.
    std::vector<std::int32_t> class_of(columns);
    std::vector<std::uint64_t> class_count(n_classes, 0);
    {
      std::size_t c = 0;
      for (std::size_t wi = 0; c < columns; ++wi) {
        const std::uint64_t odd_word =
            odd_row != nullptr ? odd_row->words()[wi] : 0;
        const std::size_t limit = std::min<std::size_t>(64, columns - c);
        for (std::size_t b = 0; b < limit; ++b, ++c) {
          std::size_t index = lead_counts[c];
          if (two_class) {
            const bool odd_set = (odd_word >> b) & 1ULL;
            index = (index * tail_span + tail_counts[c]) * 2 +
                    static_cast<std::size_t>(odd_set);
          }
          class_of[c] = static_cast<std::int32_t>(index);
          ++class_count[index];
        }
      }
    }

    // Pass 2: fold the sums of the realized classes (exact float-add
    // order of the scalar row loop), run the batched margin chain over
    // them, and scatter the verdicts into the class -> verdict table.
    std::vector<std::int32_t> realized;
    realized.reserve(n_classes);
    for (std::size_t idx = 0; idx < n_classes; ++idx)
      if (class_count[idx] != 0)
        realized.push_back(static_cast<std::int32_t>(idx));
    std::vector<float> class_sums(realized.size());
    for (std::size_t i = 0; i < realized.size(); ++i) {
      const auto idx = static_cast<std::size_t>(realized[i]);
      std::size_t n_lead = idx;
      bool odd_set = false;
      std::size_t n_tail = 0;
      if (two_class) {
        odd_set = (idx & 1) != 0;
        const std::size_t rest = idx >> 1;
        n_lead = rest / tail_span;
        n_tail = rest % tail_span;
      }
      class_sums[i] = fold_class_sum(total_weight, n_lead, odd_set, tw_odd,
                                     n_tail, tw_common);
    }

    kernels::MarginChainParams mp;
    mp.gain = m.gain;
    mp.g = m.g;
    mp.noise_denominator = m.noise_denominator;
    mp.threshold = m.threshold;
    mp.vendor_shift = m.vendor_shift;
    mp.z_penalty = m.majx_z_penalty;
    mp.n_connected = m.n_connected;
    mp.cap_ratio = p.cap_ratio;
    mp.margin_exponent = p.margin_exponent;

    std::vector<double> dense_zg(realized.size());
    std::vector<std::int32_t> dense_flags(realized.size());
    kernels::margin_chain(class_sums, mp, dense_zg, dense_flags);

    std::vector<double> zg_table(n_classes, 0.0);
    std::vector<std::int32_t> flag_table(n_classes, 0);
    for (std::size_t i = 0; i < realized.size(); ++i) {
      const auto idx = static_cast<std::size_t>(realized[i]);
      zg_table[idx] = dense_zg[i];
      flag_table[idx] = dense_flags[i];
      if (obs_margins && (dense_flags[i] & kernels::kClassTie) == 0)
        margins.add(dense_zg[i], class_count[idx]);
    }
    margins.flush();

    // Pass 3: table-driven resolve, then the metastable ties in
    // ascending column order — the same Rng draw sequence as the scalar
    // loop, which consumed tie coin flips in column order too.
    BitVec ties(columns);
    out.ties = kernels::class_resolve(class_of, zg_table, flag_table, zetas,
                                      polarities, out.resolved, out.stable,
                                      ties);
    if (out.ties != 0) {
      const auto& tie_words = ties.words();
      for (std::size_t wi = 0; wi < tie_words.size(); ++wi) {
        std::uint64_t word = tie_words[wi];
        const std::size_t base = wi * 64;
        while (word != 0) {
          const auto bit = static_cast<std::size_t>(std::countr_zero(word));
          word &= word - 1;
          // Perfect tie: the SA resolves metastably.
          out.resolved.set(base + bit, rng.chance(0.5));
        }
      }
    }
    return out;
  }

  // Scalar fallback (3+ weight classes or > 63 rows): the original
  // per-column accumulation and margin math.
  std::vector<float> sums(columns, -total_weight);
  for (std::size_t ri = 0; ri < k; ++ri) {
    const float tw = twice_w[ri];
    const auto& words = data_rows[ri]->words();
    for (std::size_t wi = 0; wi < words.size(); ++wi) {
      std::uint64_t word = words[wi];
      const std::size_t base = wi * 64;
      while (word != 0) {
        const auto bit = static_cast<std::size_t>(std::countr_zero(word));
        word &= word - 1;
        if (base + bit < columns) sums[base + bit] += tw;
      }
    }
  }
  for (std::size_t c = 0; c < columns; ++c) {
    const SumClass e = make_sum_class(sums[c], m);
    if (obs_margins && !e.tie) margins.add(e.zg, 1);
    if (e.tie) {
      out.resolved.set(c, rng.chance(0.5));
      ++out.ties;
    } else if (e.zg > zetas[c]) {
      out.resolved.set(c, e.majority_one);
      out.stable.set(c, true);
    } else {
      out.resolved.set(c, polarities[c] > 0.0f);
    }
  }
  margins.flush();
  return out;
}

const BitVec& ElectricalModel::write_overdrive_mask(const BitlineContext& ctx,
                                             RowAddr local_row,
                                             unsigned differing_fields,
                                             const EnvironmentState& env,
                                             const ApaDecision& apa) const {
  SIMRA_PROF_SCOPE("electrical/write_overdrive_mask");
  const auto& p = calib::kSmra;
  double z = p.z_best - apa.smra_z_penalty;
  if (differing_fields >= 5) z -= p.penalty_full_tree;
  z += p.temp_slope_per_degC * (env.temperature.value - 50.0);
  z -= p.vpp_slope_per_volt * (2.5 - env.vpp.value);
  const double g = group_quality(ctx, kSaltSmraGroup);
  const auto z_eff = static_cast<float>(z / g);

  return threshold_mask_cached(
      kSaltSmraOffset, ctx.bank,
      (static_cast<std::uint64_t>(ctx.subarray) << 32) | local_row,
      ctx.columns, z_eff);
}

const BitVec& ElectricalModel::copy_stable_mask(const BitlineContext& ctx,
                                         RowAddr dest_row, std::size_t n_dest,
                                         const BitVec& source,
                                         const EnvironmentState& env) const {
  SIMRA_PROF_SCOPE("electrical/copy_stable_mask");
  const auto& p = calib::kMrc;
  std::size_t bucket = 0;
  if (n_dest > 15)
    bucket = 4;
  else if (n_dest > 7)
    bucket = 3;
  else if (n_dest > 3)
    bucket = 2;
  else if (n_dest > 1)
    bucket = 1;
  double z = p.z_by_dest[bucket];
  z += p.temp_slope_per_degC * (env.temperature.value - 50.0);
  z -= p.vpp_slope_per_volt * (2.5 - env.vpp.value);
  if (bucket == 4 &&
      source.popcount() > source.size() - source.size() / 10) {
    // Driving ~all-ones into 31 destinations keeps every pull-up active.
    z -= p.all_ones_31_penalty;
  }
  const double g = group_quality(ctx, kSaltCopyGroup);
  const auto z_eff = static_cast<float>(z / g);

  return threshold_mask_cached(
      kSaltCopyOffset, ctx.bank,
      (static_cast<std::uint64_t>(ctx.subarray) << 32) | dest_row,
      ctx.columns, z_eff);
}

bool ElectricalModel::bitline_latched(const BitlineContext& ctx,
                                      std::size_t column,
                                      const ApaDecision& apa) const {
  if (apa.latch_fraction <= 0.0) return false;
  if (apa.latch_fraction >= 1.0) return true;
  // Persistent race outcome per bitline: higher latch fractions strictly
  // grow the latched set (the threshold moves, the deviate does not).
  const std::span<const float> race =
      deviates(kSaltLatchRace, ctx.bank, ctx.subarray, ctx.columns);
  return normal_cdf(race[column]) < apa.latch_fraction;
}

BitVec ElectricalModel::latched_mask(const BitlineContext& ctx,
                                     const ApaDecision& apa) const {
  SIMRA_PROF_SCOPE("electrical/latched_mask");
  if (apa.latch_fraction <= 0.0) return BitVec(ctx.columns);
  if (apa.latch_fraction >= 1.0) return BitVec(ctx.columns, true);
  const auto key = std::make_tuple(
      ctx.bank, ctx.subarray, ctx.columns,
      std::bit_cast<std::uint64_t>(apa.latch_fraction));
  auto it = latch_mask_cache_.find(key);
  if (it == latch_mask_cache_.end()) {
    if (latch_mask_cache_.size() > 256) latch_mask_cache_.clear();
    const std::span<const float> race =
        deviates(kSaltLatchRace, ctx.bank, ctx.subarray, ctx.columns);
    it = latch_mask_cache_
             .emplace(key, kernels::latch_race_mask(race, apa.latch_fraction))
             .first;
  }
  return it->second;
}

BitVec ElectricalModel::sense_frac_row(const BitlineContext& ctx,
                                       Rng::CounterStream& noise) const {
  SIMRA_PROF_SCOPE("electrical/sense_frac_row");
  if (profile_->sense_amp_bias != 0) {
    BitVec out(ctx.columns);
    out.fill(profile_->sense_amp_bias > 0);
    return out;
  }
  // Unbiased SAs resolve from their (persistent) offset plus thermal
  // noise: weak-offset bitlines flip trial to trial (the entropy source
  // of SiMRA-based TRNGs). The noise stream is counter-based, so draw i
  // of the batch is a pure function of (stream, cursor + i): the batched
  // SIMD fill, any chunked fill, and a per-column scalar loop all produce
  // the same bits.
  const std::span<const float> offsets =
      deviates(kSaltFracSense, ctx.bank, ctx.subarray, ctx.columns);
  std::vector<double> draws(ctx.columns);
  const std::uint64_t base = noise.reserve(ctx.columns);
  kernels::counter_normal_fill(noise.prefix(), base, draws);
  return kernels::offset_noise_mask(offsets, draws, 0.35);
}

}  // namespace simra::dram
