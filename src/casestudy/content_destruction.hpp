#pragma once

#include <string>
#include <vector>

#include "dram/timing.hpp"
#include "dram/types.hpp"

namespace simra::casestudy {

/// Cold-boot-attack prevention by rapid in-DRAM content destruction
/// (§8.2): overwrite every row of a bank as fast as possible during
/// power-off/on so a hot-swapped chip holds nothing readable.
enum class DestructionMethod {
  kRowClone,      ///< WR a pattern once, RowClone it row by row.
  kFrac,          ///< Frac every row to VDD/2.
  kMultiRowCopy,  ///< WR once, Multi-RowCopy in groups of N.
};

std::string to_string(DestructionMethod method);

struct DestructionPlan {
  DestructionMethod method = DestructionMethod::kRowClone;
  std::size_t rows_per_group = 2;  ///< Multi-RowCopy activation size (2..32).
};

/// Analytic execution-time model over one bank, built from the command
/// program durations of the underlying operations.
struct DestructionCost {
  std::size_t operations = 0;
  double total_ns = 0.0;
};

/// Cost of wiping one bank with the given plan. `geometry` supplies row
/// and subarray counts; timings supply the program durations.
DestructionCost destruction_cost(const DestructionPlan& plan,
                                 const dram::Geometry& geometry,
                                 const dram::TimingParams& timings);

/// Speedup of each method/size over the RowClone baseline (Fig 17's bars).
struct DestructionComparison {
  std::string label;
  DestructionCost cost;
  double speedup_vs_rowclone = 1.0;
};

std::vector<DestructionComparison> compare_destruction_methods(
    const dram::Geometry& geometry, const dram::TimingParams& timings);

}  // namespace simra::casestudy
