file(REMOVE_RECURSE
  "../bench/fig9_majx_voltage"
  "../bench/fig9_majx_voltage.pdb"
  "CMakeFiles/fig9_majx_voltage.dir/fig9_majx_voltage.cpp.o"
  "CMakeFiles/fig9_majx_voltage.dir/fig9_majx_voltage.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_majx_voltage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
