// Reproduces Fig 4: average SiMRA success rate under (a) temperature
// 50-90 C and (b) wordline voltage 2.5-2.1 V.
#include "bench_common.hpp"
#include "charz/figures.hpp"

int main() {
  using namespace simra;
  const charz::Plan plan = bench_common::announced_plan(
      "Fig 4: SiMRA success rate vs temperature and VPP");

  const charz::FigureData temp = bench_common::timed_figure(
      plan, "fig4a_smra_temperature", charz::fig4a_smra_temperature);
  bench_common::print_figure(temp);
  const charz::FigureData vpp = bench_common::timed_figure(
      plan, "fig4b_smra_voltage", charz::fig4b_smra_voltage);
  bench_common::print_figure(vpp);

  std::cout << "Paper reference points (Obs. 3/4):\n";
  const double d_temp =
      temp.mean_at({"50", "32"}) - temp.mean_at({"90", "32"});
  std::cout << "  32-row, 50C vs 90C: paper ~0.07% decrease — measured "
            << Table::num(d_temp * 100.0, 3) << "%\n";
  const double d_vpp = vpp.mean_at({"2.5", "32"}) - vpp.mean_at({"2.1", "32"});
  std::cout << "  32-row, 2.5V vs 2.1V: paper <=0.41% decrease — measured "
            << Table::num(d_vpp * 100.0, 3) << "%\n";
  return 0;
}
