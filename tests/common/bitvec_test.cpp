#include "common/bitvec.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace simra {
namespace {

TEST(BitVec, DefaultEmpty) {
  BitVec v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.popcount(), 0u);
}

TEST(BitVec, ConstructFilled) {
  BitVec zeros(100, false);
  BitVec ones(100, true);
  EXPECT_EQ(zeros.popcount(), 0u);
  EXPECT_EQ(ones.popcount(), 100u);  // trailing bits must not leak.
}

TEST(BitVec, SetGetFlip) {
  BitVec v(130);
  v.set(0, true);
  v.set(64, true);
  v.set(129, true);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(129));
  EXPECT_FALSE(v.get(1));
  EXPECT_EQ(v.popcount(), 3u);
  v.flip(129);
  EXPECT_FALSE(v.get(129));
  v.set(64, false);
  EXPECT_EQ(v.popcount(), 1u);
}

TEST(BitVec, IndexOutOfRangeThrows) {
  BitVec v(8);
  EXPECT_THROW(v.get(8), std::out_of_range);
  EXPECT_THROW(v.set(8, true), std::out_of_range);
  EXPECT_THROW(v.flip(100), std::out_of_range);
}

TEST(BitVec, FillByte) {
  BitVec v(24);
  v.fill_byte(0xAA);  // 10101010 LSB-first: bit 0 = 0, bit 1 = 1.
  EXPECT_FALSE(v.get(0));
  EXPECT_TRUE(v.get(1));
  EXPECT_FALSE(v.get(8));
  EXPECT_TRUE(v.get(9));
  EXPECT_EQ(v.popcount(), 12u);
}

TEST(BitVec, RandomizeRoughlyHalf) {
  Rng rng(3);
  BitVec v(10000);
  v.randomize(rng);
  EXPECT_NEAR(static_cast<double>(v.popcount()), 5000.0, 200.0);
}

TEST(BitVec, HammingAndMatches) {
  BitVec a(70);
  BitVec b(70);
  a.set(3, true);
  a.set(65, true);
  b.set(65, true);
  EXPECT_EQ(a.hamming_distance(b), 1u);
  EXPECT_EQ(a.matches(b), 69u);
  BitVec c(71);
  EXPECT_THROW((void)a.hamming_distance(c), std::invalid_argument);
}

TEST(BitVec, LogicalOperators) {
  BitVec a(8);
  BitVec b(8);
  a.fill_byte(0xCC);
  b.fill_byte(0xAA);
  EXPECT_EQ((a & b).popcount(), 2u);  // 0x88
  EXPECT_EQ((a | b).popcount(), 6u);  // 0xEE
  EXPECT_EQ((a ^ b).popcount(), 4u);  // 0x66
  EXPECT_EQ((~a).popcount(), 4u);
}

TEST(BitVec, EqualityIncludesSize) {
  BitVec a(8);
  BitVec b(8);
  BitVec c(9);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  b.set(0, true);
  EXPECT_FALSE(a == b);
}

TEST(BitVec, MajorityMatchesPerBitCount) {
  Rng rng(5);
  std::vector<BitVec> rows(5, BitVec(200));
  for (auto& r : rows) r.randomize(rng);
  std::vector<const BitVec*> refs;
  for (auto& r : rows) refs.push_back(&r);
  const BitVec maj = BitVec::majority(refs);
  for (std::size_t i = 0; i < 200; ++i) {
    int ones = 0;
    for (const auto& r : rows) ones += r.get(i) ? 1 : 0;
    EXPECT_EQ(maj.get(i), ones >= 3) << "bit " << i;
  }
}

TEST(BitVec, MajorityRejectsEvenOrEmpty) {
  BitVec a(4);
  EXPECT_THROW((void)BitVec::majority({}), std::invalid_argument);
  EXPECT_THROW((void)BitVec::majority({&a, &a}), std::invalid_argument);
}

TEST(BitVec, MajorityReplicationInvariant) {
  // MAJ6-style replication keeps functionality: MAJ(A,B,C,A,B,C) would be
  // even; the library identity is MAJ9(3xA,3xB,3xC) == MAJ3(A,B,C).
  Rng rng(11);
  BitVec a(128), b(128), c(128);
  a.randomize(rng);
  b.randomize(rng);
  c.randomize(rng);
  const BitVec maj3 = BitVec::majority({&a, &b, &c});
  const BitVec maj9 =
      BitVec::majority({&a, &b, &c, &a, &b, &c, &a, &b, &c});
  EXPECT_EQ(maj3, maj9);
}

TEST(BitVec, SliceAlignedAndUnaligned) {
  Rng rng(13);
  BitVec v(300);
  v.randomize(rng);
  const BitVec aligned = v.slice(64, 128);
  for (std::size_t i = 0; i < 128; ++i)
    ASSERT_EQ(aligned.get(i), v.get(64 + i));
  const BitVec unaligned = v.slice(3, 100);
  for (std::size_t i = 0; i < 100; ++i)
    ASSERT_EQ(unaligned.get(i), v.get(3 + i));
  EXPECT_THROW((void)v.slice(250, 100), std::out_of_range);
}

TEST(BitVec, AssignRange) {
  Rng rng(17);
  BitVec dst(300, true);
  BitVec src(128);
  src.randomize(rng);
  dst.assign_range(64, src);  // aligned path.
  for (std::size_t i = 0; i < 128; ++i) ASSERT_EQ(dst.get(64 + i), src.get(i));
  EXPECT_TRUE(dst.get(0));
  EXPECT_TRUE(dst.get(299));

  BitVec dst2(300, false);
  dst2.assign_range(5, src);  // unaligned path.
  for (std::size_t i = 0; i < 128; ++i) ASSERT_EQ(dst2.get(5 + i), src.get(i));
  EXPECT_THROW(dst.assign_range(250, src), std::out_of_range);
}

TEST(BitVec, AssignMasked) {
  BitVec dst(16, false);
  BitVec src(16, true);
  BitVec mask(16, false);
  mask.set(2, true);
  mask.set(15, true);
  dst.assign_masked(src, mask);
  EXPECT_EQ(dst.popcount(), 2u);
  EXPECT_TRUE(dst.get(2));
  EXPECT_TRUE(dst.get(15));
}

TEST(BitVec, ToString) {
  BitVec v(8);
  v.set(1, true);
  EXPECT_EQ(v.to_string(4), "0100");
}

TEST(BitVec, WordAccess) {
  BitVec v(100);
  v.set(0, true);
  v.set(64, true);
  v.set(99, true);
  EXPECT_EQ(v.word_count(), 2u);
  EXPECT_EQ(BitVec::word_bits(), 64u);
  EXPECT_EQ(v.word(0), 1ULL);
  EXPECT_EQ(v.word(1), 1ULL | (1ULL << 35));
  EXPECT_THROW(v.word(2), std::out_of_range);
}

TEST(BitVec, SetWordClearsTrailingBits) {
  BitVec v(100);
  v.set_word(1, ~0ULL);  // bits 100..127 of the raw word must be dropped.
  EXPECT_EQ(v.word(1), (1ULL << 36) - 1);
  EXPECT_EQ(v.popcount(), 36u);
  v.set_word(0, 0xF0F0ULL);
  EXPECT_EQ(v.word(0), 0xF0F0ULL);
  EXPECT_THROW(v.set_word(2, 0), std::out_of_range);
}

TEST(BitVec, SetRange) {
  BitVec v(200);
  v.set_range(3, 130, true);  // spans three words, unaligned both ends.
  for (std::size_t i = 0; i < 200; ++i)
    ASSERT_EQ(v.get(i), i >= 3 && i < 133) << i;
  v.set_range(60, 10, false);
  for (std::size_t i = 60; i < 70; ++i) ASSERT_FALSE(v.get(i));
  v.set_range(0, 0, true);  // empty range is a no-op.
  EXPECT_FALSE(v.get(0));
  EXPECT_THROW(v.set_range(100, 101, true), std::out_of_range);
}

}  // namespace
}  // namespace simra
