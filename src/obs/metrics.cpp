#include "obs/metrics.hpp"

#include <algorithm>
#include <sstream>

namespace simra::obs {

Histogram::Histogram(std::string name, std::vector<double> bounds)
    : name_(std::move(name)), bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  exemplar_ids_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  exemplar_value_bits_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0);
    exemplar_ids_[i].store(0);
    exemplar_value_bits_[i].store(std::bit_cast<std::uint64_t>(0.0));
  }
}

void Histogram::observe(double value) noexcept { observe(value, 1); }

void Histogram::observe(double value, std::uint64_t weight) noexcept {
  if (weight == 0) return;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  counts_[bucket].fetch_add(weight, std::memory_order_relaxed);
  count_.fetch_add(weight, std::memory_order_relaxed);
  const double add = value * static_cast<double>(weight);
  std::uint64_t expected = sum_bits_.load(std::memory_order_relaxed);
  while (!sum_bits_.compare_exchange_weak(
      expected,
      std::bit_cast<std::uint64_t>(std::bit_cast<double>(expected) + add),
      std::memory_order_relaxed)) {
  }
}

void Histogram::merge(std::span<const std::uint64_t> bucket_counts,
                      double sum, std::uint64_t count) noexcept {
  if (count == 0) return;
  const std::size_t n = std::min(bucket_counts.size(), bounds_.size() + 1);
  for (std::size_t i = 0; i < n; ++i) {
    if (bucket_counts[i] != 0)
      counts_[i].fetch_add(bucket_counts[i], std::memory_order_relaxed);
  }
  count_.fetch_add(count, std::memory_order_relaxed);
  std::uint64_t expected = sum_bits_.load(std::memory_order_relaxed);
  while (!sum_bits_.compare_exchange_weak(
      expected,
      std::bit_cast<std::uint64_t>(std::bit_cast<double>(expected) + sum),
      std::memory_order_relaxed)) {
  }
}

void Histogram::observe_exemplar(double value,
                                 std::uint64_t exemplar_id) noexcept {
  observe(value, 1);
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  // Keep the lexicographically largest (value, id) pair — an
  // order-independent merge, so the retained exemplar is deterministic
  // for a deterministic observation set.
  const double held =
      std::bit_cast<double>(exemplar_value_bits_[bucket].load(
          std::memory_order_relaxed));
  const std::uint64_t held_id =
      exemplar_ids_[bucket].load(std::memory_order_relaxed);
  if (held_id != 0 &&
      (held > value || (held == value && held_id >= exemplar_id)))
    return;
  exemplar_value_bits_[bucket].store(std::bit_cast<std::uint64_t>(value),
                                     std::memory_order_relaxed);
  exemplar_ids_[bucket].store(exemplar_id, std::memory_order_relaxed);
}

Exemplar Histogram::exemplar(std::size_t i) const noexcept {
  Exemplar e;
  e.id = exemplar_ids_[i].load(std::memory_order_relaxed);
  e.value = std::bit_cast<double>(
      exemplar_value_bits_[i].load(std::memory_order_relaxed));
  return e;
}

std::uint64_t Histogram::cumulative(std::size_t i) const noexcept {
  std::uint64_t total = 0;
  for (std::size_t b = 0; b <= i && b <= bounds_.size(); ++b)
    total += counts_[b].load(std::memory_order_relaxed);
  return total;
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
    exemplar_ids_[i].store(0, std::memory_order_relaxed);
    exemplar_value_bits_[i].store(std::bit_cast<std::uint64_t>(0.0),
                                  std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(std::bit_cast<std::uint64_t>(0.0),
                  std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::instance() {
  // Never destroyed: instrument references live in static locals at call
  // sites and must stay valid through static destruction.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

prof::Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& c : counters_)
    if (c->name() == name) return *c;
  counters_.push_back(std::make_unique<prof::Counter>(name));
  return *counters_.back();
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& g : gauges_)
    if (g->name() == name) return *g;
  gauges_.push_back(std::make_unique<Gauge>(name));
  return *gauges_.back();
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& h : histograms_)
    if (h->name() == name) return *h;
  histograms_.push_back(std::make_unique<Histogram>(name, std::move(bounds)));
  return *histograms_.back();
}

std::vector<prof::KernelStats> MetricsRegistry::counters_snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<prof::KernelStats> out;
  out.reserve(counters_.size());
  for (const auto& c : counters_)
    out.push_back({c->name(), c->calls(), c->seconds()});
  return out;
}

std::vector<GaugeStats> MetricsRegistry::gauges_snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<GaugeStats> out;
  out.reserve(gauges_.size());
  for (const auto& g : gauges_) out.push_back({g->name(), g->value()});
  return out;
}

std::vector<HistogramStats> MetricsRegistry::histograms_snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<HistogramStats> out;
  out.reserve(histograms_.size());
  for (const auto& h : histograms_) {
    HistogramStats s;
    s.name = h->name();
    s.bounds = h->bounds();
    s.counts.reserve(h->bounds().size() + 1);
    s.exemplars.reserve(h->bounds().size() + 1);
    for (std::size_t i = 0; i <= h->bounds().size(); ++i) {
      s.counts.push_back(h->bucket_count(i));
      s.exemplars.push_back(h->exemplar(i));
    }
    s.count = h->count();
    s.sum = h->sum();
    out.push_back(std::move(s));
  }
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& c : counters_) c->reset();
  for (const auto& g : gauges_) g->set(0.0);
  for (const auto& h : histograms_) h->reset();
}

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; the registry's
/// slash-separated names map '/' and other separators to '_'.
std::string prom_name(const std::string& name) {
  std::string out = "simra_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string prom_num(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

std::string MetricsRegistry::render_prometheus() const {
  std::ostringstream os;
  for (const auto& c : counters_snapshot()) {
    const std::string base = prom_name(c.name);
    os << "# TYPE " << base << "_calls counter\n"
       << base << "_calls " << c.calls << "\n";
    if (c.seconds > 0.0) {
      os << "# TYPE " << base << "_seconds counter\n"
         << base << "_seconds " << prom_num(c.seconds) << "\n";
    }
  }
  for (const auto& g : gauges_snapshot()) {
    const std::string base = prom_name(g.name);
    os << "# TYPE " << base << " gauge\n"
       << base << " " << prom_num(g.value) << "\n";
  }
  for (const auto& h : histograms_snapshot()) {
    const std::string base = prom_name(h.name);
    os << "# TYPE " << base << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.counts[i];
      os << base << "_bucket{le=\"" << prom_num(h.bounds[i]) << "\"} "
         << cumulative;
      // OpenMetrics-style exemplar: the worst observation that landed in
      // this bucket, tagged with the request id that produced it.
      if (i < h.exemplars.size() && h.exemplars[i].id != 0)
        os << " # {request_id=\"" << h.exemplars[i].id << "\"} "
           << prom_num(h.exemplars[i].value);
      os << "\n";
    }
    os << base << "_bucket{le=\"+Inf\"} " << h.count;
    if (h.exemplars.size() == h.bounds.size() + 1 &&
        h.exemplars.back().id != 0)
      os << " # {request_id=\"" << h.exemplars.back().id << "\"} "
         << prom_num(h.exemplars.back().value);
    os << "\n"
       << base << "_sum " << prom_num(h.sum) << "\n"
       << base << "_count " << h.count << "\n";
  }
  return os.str();
}

}  // namespace simra::obs
