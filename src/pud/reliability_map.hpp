#pragma once

#include "common/bitvec.hpp"
#include "dram/scrambler.hpp"
#include "pud/engine.hpp"
#include "pud/row_group.hpp"
#include "verify/reliability.hpp"

namespace simra {
class Rng;
}

namespace simra::pud {

/// Per-bitline stability profiling. The paper's success-rate metric
/// divides cells into *stable* (always correct) and unstable; a deployed
/// PUD system profiles once and then computes only on the stable columns
/// (this is how §8.1 turns success rates into usable throughput). This
/// profiler extracts that column mask through the command interface.
class ReliabilityMap {
 public:
  ReliabilityMap(Engine* engine, Rng* rng);

  /// Columns whose MAJX result was correct in every profiling trial for
  /// this group (bare-majority adversarial inputs in both polarities plus
  /// random trials, as in the §3.1 metric).
  BitVec stable_majx_columns(dram::BankId bank, dram::SubarrayId sa,
                             const RowGroup& group, unsigned x,
                             unsigned trials = 4);

  /// Fraction of stable columns (== the figure-level success rate).
  static double usable_fraction(const BitVec& mask);

  /// Of several candidate groups, returns the index whose stable-column
  /// count is largest (the "highest throughput group" selection of §8.1).
  std::size_t best_group(dram::BankId bank, dram::SubarrayId sa,
                         const std::vector<RowGroup>& candidates, unsigned x,
                         unsigned trials = 4);

  /// Records a profiled group into a verify::ReliabilityPolicy in the
  /// form the dataflow pass reports many-row activations: the full
  /// internal (post-scrambler) driven row set of ACT(R_F) -> PRE ->
  /// ACT(R_S). The whole-program reliability lint then treats any
  /// simultaneous activation outside the recorded sets as an unprofiled
  /// excursion (CheckId::kUnreliableGroup).
  static void approve_group(verify::ReliabilityPolicy& policy,
                            const dram::PredecoderLayout& layout,
                            const dram::RowScrambler& scrambler,
                            dram::BankId bank, dram::SubarrayId sa,
                            const RowGroup& group);

 private:
  Engine* engine_;
  Rng* rng_;
};

}  // namespace simra::pud
