file(REMOVE_RECURSE
  "../bench/fig4_smra_temp_voltage"
  "../bench/fig4_smra_temp_voltage.pdb"
  "CMakeFiles/fig4_smra_temp_voltage.dir/fig4_smra_temp_voltage.cpp.o"
  "CMakeFiles/fig4_smra_temp_voltage.dir/fig4_smra_temp_voltage.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_smra_temp_voltage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
