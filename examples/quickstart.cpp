// Quickstart: open a simulated DDR4 chip, simultaneously activate 32 rows
// with one timing-violating APA command pair, and perform an in-DRAM
// majority-of-three with input replication — the paper's §3.3 flow in a
// few lines of the public API.
#include <cstdio>

#include "common/rng.hpp"
#include "dram/chip.hpp"
#include "pud/engine.hpp"
#include "pud/patterns.hpp"
#include "pud/row_group.hpp"

int main() {
  using namespace simra;

  // 1. A chip under test: SK Hynix 4Gb M-die (Table 1). The seed fixes
  //    the chip's process variation (its stable/unstable cell map).
  dram::Chip chip(dram::VendorProfile::hynix_m(), /*seed=*/2024);
  pud::Engine engine(&chip);
  Rng rng(1);

  // 2. Pick a row group: ACT(R_F) -> PRE -> ACT(R_S) with violated
  //    timings opens the cartesian product of the two rows' pre-decoder
  //    digits (§7.1) — here 32 rows at once.
  const pud::RowGroup group = pud::sample_group(chip.layout(), 32, rng);
  std::printf("APA pair (R_F=%u, R_S=%u) simultaneously activates %zu rows:\n ",
              group.row_first, group.row_second, group.size());
  for (dram::RowAddr r : group.rows) std::printf(" %u", r);
  std::printf("\n\n");

  // 3. MAJ3 with input replication: each operand is stored 10x across the
  //    32 activated rows (Takeaway 4: replication boosts reliability).
  const std::size_t columns = chip.profile().geometry.columns;
  pud::MajxConfig maj;
  maj.x = 3;
  maj.operands =
      pud::make_pattern_rows(dram::DataPattern::kRandom, columns, 3, rng);
  const BitVec result = engine.majx(/*bank=*/0, /*subarray=*/1, group, maj);

  // 4. Compare with the reference majority.
  std::vector<const BitVec*> refs;
  for (const BitVec& op : maj.operands) refs.push_back(&op);
  const BitVec expected = BitVec::majority(refs);
  const double success =
      static_cast<double>(result.matches(expected)) / columns;
  std::printf("in-DRAM MAJ3 @ 32-row activation: %.2f%% of %zu bitlines "
              "computed the correct majority\n",
              success * 100.0, columns);
  std::printf("(the paper reports 99.00%% on average across 120 chips)\n");
  return 0;
}
