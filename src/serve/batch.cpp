#include "serve/batch.hpp"

#include <stdexcept>

#include "pud/program_builders.hpp"
#include "verify/optimizer.hpp"

namespace simra::serve {

using bender::CommandKind;
using bender::Program;

BatchCompiler::BatchCompiler(const dram::VendorProfile* profile,
                             const dram::PredecoderLayout* layout)
    : profile_(profile), layout_(layout) {
  if (profile_ == nullptr || layout_ == nullptr)
    throw std::invalid_argument("batch compiler needs a profile and layout");
  table_ = verify::RuleTable::ddr4(profile_->timings);
}

std::string BatchCompiler::validate(const Request& request,
                                    const pud::RowGroup& group) const {
  const auto& geom = profile_->geometry;
  const std::size_t rows = layout_->rows();
  if (request.bank >= geom.banks) return "bank out of range";
  if (request.sa >= geom.subarrays_per_bank()) return "subarray out of range";
  for (const BitVec& operand : request.operands)
    if (operand.size() != geom.columns)
      return "operand width does not match the row width";
  switch (request.op) {
    case OpKind::kRowClone:
      if (request.src >= rows || request.dst >= rows)
        return "row outside the subarray";
      if (request.src == request.dst)
        return "rowclone source equals destination";
      if (request.operands.size() > 1)
        return "rowclone takes at most one seed operand";
      break;
    case OpKind::kMultiRowCopy:
      if (request.operands.size() > 1)
        return "multi-row copy takes at most one seed operand";
      if (group.size() < 2) return "activation group too small";
      break;
    case OpKind::kBulkInit:
      if (request.operands.size() != 1)
        return "bulk init needs exactly one pattern operand";
      if (group.size() < 2) return "activation group too small";
      break;
    case OpKind::kMajx:
      if (request.operands.size() < 3 || request.operands.size() % 2 == 0)
        return "MAJX needs an odd operand count >= 3";
      if (group.size() < request.operands.size())
        return "activation group smaller than the operand count";
      break;
  }
  return {};
}

CompiledRequest BatchCompiler::compile(const Request& request,
                                       const pud::RowGroup& group) const {
  if (const std::string reason = validate(request, group); !reason.empty())
    throw std::invalid_argument("serve: " + reason);

  const auto& profile = *profile_;
  const std::size_t rows = layout_->rows();
  const std::size_t columns = profile.geometry.columns;
  const dram::BankId bank = request.bank;
  const auto global = [&](dram::RowAddr local) {
    return pud::programs::global_row(request.sa, rows, local);
  };

  CompiledRequest compiled;
  compiled.id = request.id;
  switch (request.op) {
    case OpKind::kRowClone: {
      if (!request.operands.empty())
        compiled.segments.push_back(pud::programs::write_row(
            profile, bank, global(request.src), request.operands.front()));
      compiled.segments.push_back(pud::programs::rowclone(
          profile, bank, global(request.src), global(request.dst)));
      if (request.read_back) {
        compiled.segments.push_back(pud::programs::read_row(
            profile, bank, global(request.dst), columns));
        compiled.reads = 1;
      }
      break;
    }
    case OpKind::kMultiRowCopy:
    case OpKind::kBulkInit: {
      // One APA at the Multi-RowCopy timings writes R_F's content into
      // every row of the group — the §3.4 fan-out that amortizes a full
      // write per destination row into a single activation pair.
      if (!request.operands.empty())
        compiled.segments.push_back(pud::programs::write_row(
            profile, bank, global(group.row_first),
            request.operands.front()));
      compiled.segments.push_back(pud::programs::apa(
          profile, bank, global(group.row_first), global(group.row_second),
          pud::ApaTimings::best_for_multi_row_copy(),
          /*read_buffer=*/false));
      if (request.read_back) {
        compiled.segments.push_back(pud::programs::read_row(
            profile, bank, global(group.row_second), columns));
        compiled.reads = 1;
      }
      break;
    }
    case OpKind::kMajx: {
      for (Program& staged : pud::programs::majx_staging(
               profile, rows, bank, request.sa, group, request.operands))
        compiled.segments.push_back(std::move(staged));
      compiled.segments.push_back(pud::programs::apa(
          profile, bank, global(group.row_first), global(group.row_second),
          pud::ApaTimings::best_for_majx(), /*read_buffer=*/true));
      compiled.reads = 1;
      break;
    }
  }
  return compiled;
}

Program BatchCompiler::fuse(const std::string& name,
                            std::span<const CompiledRequest> batch,
                            std::vector<FusedExtent>* extents) const {
  const auto& t = profile_->timings;
  Program fused;
  fused.set_name(name);
  if (extents) {
    extents->clear();
    extents->reserve(batch.size());
  }
  // Per-request command index range on the fused program, so extents can
  // be recomputed after slot compaction moves everything.
  struct Range {
    std::size_t first_cmd = 0;
    std::size_t last_cmd = 0;
    std::uint64_t end_slots = 0;  ///< request extent incl. trailing pad.
  };
  std::vector<Range> ranges;
  ranges.reserve(batch.size());
  for (const CompiledRequest& compiled : batch) {
    FusedExtent extent;
    Range range;
    range.first_cmd = fused.commands().size();
    extent.first_command = range.first_cmd;
    bool first = true;
    for (const Program& segment : compiled.segments) {
      // The previous segment's trailing tRP already separates the PRE
      // from the next ACT (the nominal-reopen side of the §6 thresholds,
      // as between separately executed programs); the extra pad keeps
      // the rank-wide rolling four-activate window satisfied across the
      // boundary, which serial execution leaves unconstrained.
      if (!fused.empty())
        fused.pad_after_last(CommandKind::kAct, t.tFAW);
      if (first) {
        extent.start_ns =
            static_cast<double>(fused.cursor_slot()) * bender::kSlotNs;
        first = false;
      }
      fused.append(segment);
    }
    extent.end_ns = fused.duration_ns();
    extent.command_count = fused.commands().size() - range.first_cmd;
    range.last_cmd =
        fused.commands().empty() ? 0 : fused.commands().size() - 1;
    range.end_slots = fused.extent_slots();
    ranges.push_back(range);
    if (extents) extents->push_back(extent);
  }

  if (verify::global_opt_mode() != verify::OptMode::kOn || fused.empty())
    return fused;
  verify::Optimized packed = verify::compact(fused, table_);
  if (!packed.stats.compacted ||
      packed.stats.extent_after >= packed.stats.extent_before)
    return fused;
  if (extents) {
    const auto& before = fused.commands();
    const auto& after = packed.program.commands();
    for (std::size_t i = 0; i < ranges.size(); ++i) {
      const Range& r = ranges[i];
      if (r.first_cmd >= after.size()) continue;  // request had no commands.
      (*extents)[i].start_ns =
          static_cast<double>(after[r.first_cmd].slot) * bender::kSlotNs;
      // Preserve the request's own trailing pad beyond its last command.
      const std::uint64_t tail = r.end_slots - before[r.last_cmd].slot;
      (*extents)[i].end_ns =
          static_cast<double>(after[r.last_cmd].slot + tail) *
          bender::kSlotNs;
    }
  }
  return packed.program;
}

}  // namespace simra::serve
