// Reproduces Fig 3: success-rate distribution of simultaneous many-row
// activation for every (t1, t2) timing pair and activation size.
#include "bench_common.hpp"
#include "charz/figures.hpp"

int main() {
  using namespace simra;
  const charz::Plan plan = bench_common::announced_plan(
      "Fig 3: SiMRA success rate vs APA timing (t1, t2)");
  const charz::FigureData figure = bench_common::timed_figure(
      plan, "fig3_smra_timing", charz::fig3_smra_timing);
  bench_common::print_figure(figure);

  std::cout << "Paper reference points (Obs. 1/2):\n";
  bench_common::compare("  2-row @ (3,3)", 99.99,
                        figure.mean_at({"3", "3", "2"}));
  bench_common::compare("  16-row @ (3,3)", 99.99,
                        figure.mean_at({"3", "3", "16"}));
  bench_common::compare("  32-row @ (3,3)", 99.85,
                        figure.mean_at({"3", "3", "32"}));
  const double best8 = figure.mean_at({"1.5", "3", "8"});
  const double low8 = figure.mean_at({"1.5", "1.5", "8"});
  std::cout << "  8-row (1.5,1.5) vs (1.5,3): paper -21.74% — measured "
            << Table::num((low8 - best8) * 100.0, 2) << "%\n";
  bench_common::HarnessReport::global().record_kernels();
  return 0;
}
