# Empty compiler generated dependencies file for make_report.
# This may be replaced when dependencies are built.
