#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "charz/plan.hpp"

namespace simra::charz {

/// Worker count the harness fans instance sweeps across: `SIMRA_THREADS`
/// when set to a positive integer, `hardware_concurrency` otherwise.
/// 1 means exact serial execution on the calling thread (no pool).
unsigned harness_threads();

namespace detail {

/// One schedulable unit of work: a fully independent chip. The chip's
/// Chip / Engine / Rng are seeded purely from (plan.seed, module_index,
/// chip_index), so a task produces the same instances no matter which
/// thread runs it, or when.
struct ChipTask {
  const Plan::ModuleSpec* spec = nullptr;
  std::uint64_t module_index = 0;
  std::size_t chip_index = 0;
};

/// The plan's chip tasks in deterministic (module, chip) order — the
/// order the serial walk visits them and the order partial results are
/// merged in.
std::vector<ChipTask> chip_tasks(const Plan& plan);

/// Instantiates one chip task's Chip / Engine / Rng and invokes `fn` for
/// each of its (bank, subarray) instances, in serial-walk order.
void run_chip_task(const Plan& plan, const ChipTask& task,
                   const std::function<void(Instance&)>& fn);

/// Runs fn(0 .. n_tasks-1) across up to `threads` workers. `fn` must only
/// touch state owned by its task index. The first exception thrown by any
/// task is rethrown on the caller after all workers join.
void dispatch_tasks(std::size_t n_tasks, unsigned threads,
                    const std::function<void(std::size_t)>& fn);

}  // namespace detail

/// Parallel instance sweep with deterministic aggregation.
///
/// Fans the plan's chips across a pool of `harness_threads()` workers.
/// Each task accumulates into its own default-constructed `Acc`; once all
/// tasks finish, the per-chip accumulators are merged in (module, chip)
/// order. Because each chip's instances are visited in serial-walk order
/// within their task, and merging appends samples in that same order, the
/// result is bit-identical for every thread count — including the
/// single-threaded serial walk.
///
/// `Acc` must be default-constructible and provide `merge(const Acc&)`
/// appending the other accumulator's samples in order (SeriesAccumulator,
/// SampleSet, RunningStats, DisturbanceResult).
template <typename Acc, typename Fn>
Acc run_instances(const Plan& plan, Fn&& fn) {
  const std::vector<detail::ChipTask> tasks = detail::chip_tasks(plan);
  std::vector<Acc> partials(tasks.size());
  detail::dispatch_tasks(tasks.size(), harness_threads(), [&](std::size_t i) {
    detail::run_chip_task(plan, tasks[i],
                          [&](Instance& inst) { fn(inst, partials[i]); });
  });
  Acc merged;
  for (const Acc& partial : partials) merged.merge(partial);
  return merged;
}

}  // namespace simra::charz
