#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

namespace simra::serve {

/// Admission verdict for one submission.
enum class Admission : std::uint8_t {
  kAdmit,
  kQueueFull,       ///< global in-flight limit reached.
  kTenantOverQuota, ///< the submitting tenant's share is exhausted.
};

const char* to_string(Admission verdict);

/// Lock-free admission control: a global in-flight cap (bounding scheduler
/// memory) plus a per-tenant quota so one tenant cannot starve the rest —
/// the paper's "many users" framing needs isolation, not just throughput.
/// Tenants hash into a fixed array of slots; `release` must be called
/// exactly once per admitted request (the service does so on delivery).
class AdmissionController {
 public:
  AdmissionController(std::size_t global_limit, std::size_t tenant_quota,
                      std::size_t tenant_slots = 64);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  Admission try_admit(std::uint32_t tenant) noexcept;
  void release(std::uint32_t tenant) noexcept;

  std::size_t in_flight() const noexcept {
    return static_cast<std::size_t>(
        global_.load(std::memory_order_relaxed));
  }
  std::size_t tenant_in_flight(std::uint32_t tenant) const noexcept;
  std::size_t global_limit() const noexcept { return global_limit_; }
  std::size_t tenant_quota() const noexcept { return tenant_quota_; }

 private:
  std::size_t slot_of(std::uint32_t tenant) const noexcept;

  std::size_t global_limit_;
  std::size_t tenant_quota_;
  std::size_t tenant_slots_;
  std::atomic<std::int64_t> global_{0};
  std::unique_ptr<std::atomic<std::int64_t>[]> tenants_;
};

}  // namespace simra::serve
