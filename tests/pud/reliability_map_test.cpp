#include "pud/reliability_map.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "pud/patterns.hpp"

namespace simra::pud {
namespace {

class ReliabilityMapTest : public ::testing::Test {
 protected:
  dram::Chip chip_{dram::VendorProfile::hynix_m(), 141};
  Engine engine_{&chip_};
  Rng rng_{142};
  ReliabilityMap profiler_{&engine_, &rng_};

  std::size_t columns() const { return chip_.profile().geometry.columns; }
};

TEST_F(ReliabilityMapTest, Maj3StableColumnsAreNearlyAll) {
  const RowGroup group = sample_group(engine_.layout(), 32, rng_);
  const BitVec mask = profiler_.stable_majx_columns(0, 1, group, 3);
  EXPECT_GT(ReliabilityMap::usable_fraction(mask), 0.85);
}

TEST_F(ReliabilityMapTest, Maj7StableColumnsAreScarcer) {
  const RowGroup group = sample_group(engine_.layout(), 32, rng_);
  const BitVec maj3 = profiler_.stable_majx_columns(0, 1, group, 3);
  const BitVec maj7 = profiler_.stable_majx_columns(0, 1, group, 7);
  EXPECT_LT(maj7.popcount(), maj3.popcount());
}

TEST_F(ReliabilityMapTest, StableColumnsActuallyComputeCorrectly) {
  // The mask's promise: on stable columns, a fresh MAJX is always right.
  const RowGroup group = sample_group(engine_.layout(), 32, rng_);
  const BitVec mask = profiler_.stable_majx_columns(0, 1, group, 5, 4);

  MajxConfig config;
  config.x = 5;
  config.operands =
      make_pattern_rows(dram::DataPattern::kRandom, columns(), 5, rng_);
  std::vector<const BitVec*> refs;
  for (const BitVec& op : config.operands) refs.push_back(&op);
  const BitVec expected = BitVec::majority(refs);
  const BitVec result = engine_.majx(0, 1, group, config);

  const BitVec wrong_on_stable = (result ^ expected) & mask;
  EXPECT_EQ(wrong_on_stable.popcount(), 0u);
}

TEST_F(ReliabilityMapTest, ProfilingIsRepeatable) {
  const RowGroup group = sample_group(engine_.layout(), 32, rng_);
  Rng rng_a(7);
  Rng rng_b(7);
  ReliabilityMap a(&engine_, &rng_a);
  ReliabilityMap b(&engine_, &rng_b);
  EXPECT_EQ(a.stable_majx_columns(0, 2, group, 5),
            b.stable_majx_columns(0, 2, group, 5));
}

TEST_F(ReliabilityMapTest, BestGroupPicksHighestStableCount) {
  std::vector<RowGroup> candidates;
  for (int i = 0; i < 4; ++i)
    candidates.push_back(sample_group(engine_.layout(), 32, rng_));

  // Run the selection and an identical manual argmax with the same
  // profiling randomness (profiling draws fresh random trials, so the
  // comparison must replay the same stream).
  Rng rng_select(99);
  Rng rng_manual(99);
  ReliabilityMap selector(&engine_, &rng_select);
  ReliabilityMap manual(&engine_, &rng_manual);

  const std::size_t best = selector.best_group(0, 1, candidates, 7);
  std::size_t expected_best = 0;
  std::size_t expected_count = 0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const std::size_t count =
        manual.stable_majx_columns(0, 1, candidates[i], 7).popcount();
    if (count > expected_count) {
      expected_count = count;
      expected_best = i;
    }
  }
  EXPECT_EQ(best, expected_best);
}

TEST_F(ReliabilityMapTest, RejectsEmptyCandidates) {
  EXPECT_THROW((void)profiler_.best_group(0, 1, {}, 3),
               std::invalid_argument);
}

}  // namespace
}  // namespace simra::pud
