#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "bender/program.hpp"
#include "dram/predecoder.hpp"
#include "dram/scrambler.hpp"
#include "verify/analyzer.hpp"
#include "verify/rules.hpp"

namespace simra::verify {

/// Inputs the whole-program passes need beyond the declarative rule
/// table: the pre-decoder layout (to expand APA activation groups the
/// same way the chip's local wordline decoder does), the row geometry,
/// and the chip quirks that change command semantics. All pointers are
/// non-owning and must outlive the pass.
struct ProgramContext {
  const RuleTable* table = nullptr;
  const dram::PredecoderLayout* layout = nullptr;
  const dram::RowScrambler* scrambler = nullptr;  ///< nullptr = identity.
  std::size_t columns = 0;  ///< row width in bits (full-row write test).
  /// Mfr. S (§9 Limitation 1): internal circuitry drops PRE/ACT pairs
  /// that violate tRP, so the sub-tRP regimes never engage.
  bool gates_violated_timings = false;
  /// Rows this program never touches hold unknown-but-valid data left by
  /// earlier programs (the engine runs many small programs against one
  /// chip), so "unknown" is not "uninitialized". Set false for
  /// self-contained programs (e.g. a fused MAJX batch that stages all of
  /// its operands): unknown then means never-initialized, and reads or
  /// charge-share uses of it become findings.
  bool assume_defined_on_entry = true;
};

/// One simultaneous-activation event (the §3.1 many-row regime): the
/// full driven row set as the pre-decoder latches predict it, in
/// internal (post-scrambler) subarray-local row addresses.
struct ApaEvent {
  std::uint64_t slot = 0;
  std::size_t command_index = 0;
  int bank = 0;
  dram::SubarrayId sa = 0;
  std::vector<dram::RowAddr> rows;  ///< driven local rows, sorted.
};

/// Output of the dataflow/lifetime pass: classified findings, the APA
/// events (input to the reliability lint), and the two families of
/// provably removable commands the optimizer consumes. Removability is
/// judged against the fault-free chip model only — callers must not act
/// on `dead_stores` / `redundant_reopens` when a fault injector is
/// attached (injected flips are drawn per touched command).
struct DataflowResult {
  std::vector<Finding> findings;
  std::vector<ApaEvent> apas;
  /// Indices of full-row WR commands whose data is never observed before
  /// a later full-row WR to the same single open row overwrites it.
  std::vector<std::size_t> dead_stores;
  /// (PRE index, ACT index) pairs that close and nominally re-open the
  /// row the bank already had open with no distinguishable state change.
  std::vector<std::pair<std::size_t, std::size_t>> redundant_reopens;
};

/// Walks the slot timeline once, tracking per-(bank, row) value state
/// (undefined / written / copied-from / clobbered-by-APA / frac) through
/// the same activation regimes the chip model implements (§6 thresholds),
/// and classifies findings against the program's declared intents.
DataflowResult dataflow(const bender::Program& program,
                        const ProgramContext& ctx);

}  // namespace simra::verify
