#include "dram/power_model.hpp"

#include <cmath>
#include <stdexcept>

#include "dram/calibration.hpp"

namespace simra::dram {

std::string to_string(PowerOp op) {
  switch (op) {
    case PowerOp::kRead:
      return "RD";
    case PowerOp::kWrite:
      return "WR";
    case PowerOp::kActPre:
      return "ACT+PRE";
    case PowerOp::kRefresh:
      return "REF";
    case PowerOp::kManyRowActivation:
      return "N-row ACT";
  }
  return "?";
}

Milliwatts PowerModel::average_power(PowerOp op, std::size_t n_rows) {
  const auto& p = calib::kPower;
  switch (op) {
    case PowerOp::kRead:
      return Milliwatts{p.rd_mw};
    case PowerOp::kWrite:
      return Milliwatts{p.wr_mw};
    case PowerOp::kActPre:
      return Milliwatts{p.act_pre_mw};
    case PowerOp::kRefresh:
      return Milliwatts{p.ref_mw};
    case PowerOp::kManyRowActivation: {
      if (n_rows == 0) throw std::invalid_argument("n_rows must be >= 1");
      const double log_n = std::log2(static_cast<double>(n_rows));
      return Milliwatts{p.apa_base_mw + p.apa_log_slope_mw * (log_n / 5.0)};
    }
  }
  throw std::invalid_argument("unknown power op");
}

double PowerModel::apa_vs_ref_fraction(std::size_t n_rows) {
  return average_power(PowerOp::kManyRowActivation, n_rows).value /
         calib::kPower.ref_mw;
}

double PowerModel::energy_pj(PowerOp op, Nanoseconds duration,
                             std::size_t n_rows) {
  return average_power(op, n_rows).value * duration.value;
}

}  // namespace simra::dram
