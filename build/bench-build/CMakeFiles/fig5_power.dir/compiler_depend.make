# Empty compiler generated dependencies file for fig5_power.
# This may be replaced when dependencies are built.
