// Overhead guardrail for the observability layer: runs the same quick
// fig3 sweep with tracing off and on (test override, so no artifact
// files), then a deterministic serving loop the same way, records the
// measured overheads as gauges in BENCH_harness.json, and fails when
// either exceeds the budget (SIMRA_OVERHEAD_MAX percent, default 5).
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "charz/figures.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "serve/service.hpp"
#include "serve/workload.hpp"

namespace {

double timed_fig3_seconds(const simra::charz::Plan& plan) {
  const auto start = std::chrono::steady_clock::now();
  (void)simra::charz::fig3_smra_timing(plan);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// One deterministic serving pass (single-threaded submit, synchronous
/// pumping) — the same code path bench_serve --deterministic exercises,
/// sized to finish in well under a second so the off/on pair is cheap to
/// repeat.
double timed_serve_seconds(std::size_t ops) {
  using namespace simra::serve;
  ServiceConfig config;
  config.shards = 3;
  config.max_batch = 8;
  config.queue_capacity = 512;
  config.max_in_flight = 512;
  config.tenant_quota = 512;
  config.seed = 0xd07;
  Service service{config};
  WorkloadSpec spec;
  spec.columns = service.config().profiles.front().geometry.columns;
  // Seeded operands and read-back make each request carry its full
  // electrical simulation cost, so the fixed per-request tracing cost is
  // measured against representative work, not empty programs.
  spec.rows = 32;
  spec.seed_sources = true;
  spec.read_back = true;
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::unique_ptr<Ticket>> tickets;
  tickets.reserve(ops);
  for (std::size_t i = 0; i < ops; ++i) {
    tickets.push_back(std::make_unique<Ticket>());
    (void)service.submit(make_request(spec, i), tickets.back().get());
    if ((i + 1) % 64 == 0) service.drain();
  }
  service.drain();
  for (auto& ticket : tickets) (void)ticket->wait();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Best-of-N wall-clock: the minimum is the least-noise estimate of the
/// true cost, which is what an overhead ratio should compare.
template <typename Fn>
double best_of(int n, Fn&& fn) {
  double best = fn();
  for (int i = 1; i < n; ++i) best = std::min(best, fn());
  return best;
}

}  // namespace

int main() {
  using namespace simra;
  const charz::Plan plan = bench_common::announced_plan(
      "Observability overhead guardrail (fig3 + serve, obs off vs on)");
  const std::string budget_text = env_string("SIMRA_OVERHEAD_MAX", "5.0");
  const double budget_pct = std::strtod(budget_text.c_str(), nullptr);
  const std::size_t serve_ops = static_cast<std::size_t>(
      env_int("SIMRA_SERVE_OVERHEAD_OPS", 512));

  // Warm-up pass so one-time initialization (calibration tables, counter
  // registration) is attributed to neither side.
  obs::set_enabled_for_test(false);
  (void)timed_fig3_seconds(plan);
  (void)timed_serve_seconds(serve_ops);

  const double off_seconds = best_of(3, [&] { return timed_fig3_seconds(plan); });
  obs::set_enabled_for_test(true);
  obs::reset_log();
  const double on_seconds = best_of(3, [&] {
    const double seconds = timed_fig3_seconds(plan);
    obs::reset_log();
    return seconds;
  });

  // Serving path: the full request-scoped pipeline (span trees, SLO
  // histograms, slot attribution) against the identical pipeline with obs
  // compiled out at runtime.
  obs::set_enabled_for_test(false);
  obs::reset_log();
  const double serve_off_seconds =
      best_of(3, [&] { return timed_serve_seconds(serve_ops); });
  obs::set_enabled_for_test(true);
  obs::reset_log();
  // The log is reset between repetitions so the minimum measures the
  // steady-state recording cost: a long-running service flushes and
  // recycles its trace memory, so retained pages get reused. Without the
  // reset every repetition first-touches fresh pages for data it retains
  // until flush, and the page-commit cost — proportional to artifact
  // size, not request rate — dominates the measurement.
  const double serve_on_seconds = best_of(3, [&] {
    const double seconds = timed_serve_seconds(serve_ops);
    obs::reset_log();
    return seconds;
  });
  obs::set_enabled_for_test(std::nullopt);
  obs::reset_log();

  const double overhead_pct =
      off_seconds > 0.0 ? (on_seconds / off_seconds - 1.0) * 100.0 : 0.0;
  const double serve_overhead_pct =
      serve_off_seconds > 0.0
          ? (serve_on_seconds / serve_off_seconds - 1.0) * 100.0
          : 0.0;
  obs::MetricsRegistry::instance()
      .gauge("obs/overhead_pct")
      .set(overhead_pct);
  obs::MetricsRegistry::instance()
      .gauge("obs/serve_overhead_pct")
      .set(serve_overhead_pct);
  bench_common::HarnessReport::global().record("obs_overhead_off",
                                               off_seconds,
                                               plan.instance_count());
  bench_common::HarnessReport::global().record("obs_overhead_on", on_seconds,
                                               plan.instance_count());
  bench_common::HarnessReport::global().record("obs_serve_overhead_off",
                                               serve_off_seconds, serve_ops);
  bench_common::HarnessReport::global().record("obs_serve_overhead_on",
                                               serve_on_seconds, serve_ops);
  bench_common::HarnessReport::global().record_kernels();

  std::cout << "obs off: " << Table::num(off_seconds, 3) << " s, obs on: "
            << Table::num(on_seconds, 3) << " s, overhead "
            << Table::num(overhead_pct, 2) << "% (budget "
            << Table::num(budget_pct, 1) << "%)\n";
  std::cout << "serve off: " << Table::num(serve_off_seconds, 3)
            << " s, serve on: " << Table::num(serve_on_seconds, 3)
            << " s, overhead " << Table::num(serve_overhead_pct, 2)
            << "% (budget " << Table::num(budget_pct, 1) << "%)\n";
  bool failed = false;
  if (overhead_pct > budget_pct) {
    std::cout << "FAIL: tracing overhead exceeds the budget\n";
    failed = true;
  }
  if (serve_overhead_pct > budget_pct) {
    std::cout << "FAIL: serve-path tracing overhead exceeds the budget\n";
    failed = true;
  }
  if (failed) return 1;
  std::cout << "PASS\n";
  return 0;
}
