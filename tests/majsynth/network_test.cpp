#include "majsynth/network.hpp"

#include <gtest/gtest.h>

namespace simra::majsynth {
namespace {

TEST(Network, ConstantsAndNot) {
  Network net;
  const int zero = net.const_zero();
  const int one = net.const_one();
  const int a = net.add_input("a");
  const int na = net.add_not(a);
  net.mark_output(zero);
  net.mark_output(one);
  net.mark_output(na);
  const auto out = net.evaluate({0xF0F0F0F0F0F0F0F0ull});
  EXPECT_EQ(out[0], 0ull);
  EXPECT_EQ(out[1], ~0ull);
  EXPECT_EQ(out[2], ~0xF0F0F0F0F0F0F0F0ull);
}

TEST(Network, ConstNodesAreShared) {
  Network net;
  EXPECT_EQ(net.const_zero(), net.const_zero());
  EXPECT_EQ(net.const_one(), net.const_one());
}

TEST(Network, MajorityGateTruth) {
  Network net;
  const int a = net.add_input();
  const int b = net.add_input();
  const int c = net.add_input();
  net.mark_output(net.add_maj({a, b, c}));
  // 8 input combinations packed into the low 8 bits.
  const std::uint64_t wa = 0b10101010;
  const std::uint64_t wb = 0b11001100;
  const std::uint64_t wc = 0b11110000;
  const auto out = net.evaluate({wa, wb, wc});
  EXPECT_EQ(out[0] & 0xFF, 0b11101000u);  // MAJ truth table.
}

TEST(Network, WeightedMajorityViaRepeatedInputs) {
  Network net;
  const int a = net.add_input();
  const int b = net.add_input();
  const int c = net.add_input();
  // MAJ5(a, a, b, c, 0) == a AND (b OR c) ... verify by truth table:
  net.mark_output(net.add_maj({a, a, b, c, net.const_zero()}));
  const std::uint64_t wa = 0b10101010;
  const std::uint64_t wb = 0b11001100;
  const std::uint64_t wc = 0b11110000;
  const auto out = net.evaluate({wa, wb, wc});
  const std::uint64_t expected = wa & (wb | wc);
  EXPECT_EQ(out[0] & 0xFF, expected & 0xFF);
}

TEST(Network, RejectsBadGates) {
  Network net;
  const int a = net.add_input();
  EXPECT_THROW((void)net.add_maj({a, a}), std::invalid_argument);
  EXPECT_THROW((void)net.add_maj({a}), std::invalid_argument);
  EXPECT_THROW((void)net.add_maj({a, a, 99}), std::out_of_range);
  EXPECT_THROW((void)net.add_not(-1), std::out_of_range);
  EXPECT_THROW(net.mark_output(42), std::out_of_range);
}

TEST(Network, EvaluateChecksInputCount) {
  Network net;
  net.add_input();
  net.add_input();
  EXPECT_THROW((void)net.evaluate({0ull}), std::invalid_argument);
}

TEST(Network, CostCountsGatesByFanin) {
  Network net;
  const int a = net.add_input();
  const int b = net.add_input();
  const int m3 = net.add_maj({a, b, net.const_zero()});
  const int m5 = net.add_maj({a, b, m3, m3, net.const_one()});
  net.add_not(m5);
  net.add_not(a);
  const NetworkCost cost = net.cost();
  EXPECT_EQ(cost.maj_by_fanin.at(3), 1u);
  EXPECT_EQ(cost.maj_by_fanin.at(5), 1u);
  EXPECT_EQ(cost.not_gates, 2u);
  EXPECT_EQ(cost.total_maj(), 2u);
  EXPECT_EQ(cost.max_fanin(), 5u);
}

}  // namespace
}  // namespace simra::majsynth
