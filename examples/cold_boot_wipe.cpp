// Cold-boot-attack prevention (§8.2): destroy a subarray's secrets with
// Multi-RowCopy before an attacker can hot-swap the module. The demo
// actually wipes simulated rows through the command interface, then shows
// the analytic whole-bank cost comparison of Fig 17.
#include <cstdio>

#include "casestudy/content_destruction.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "dram/chip.hpp"
#include "pud/engine.hpp"
#include "pud/row_group.hpp"

int main() {
  using namespace simra;
  using namespace simra::casestudy;

  dram::Chip chip(dram::VendorProfile::hynix_m(), 99);
  pud::Engine engine(&chip);
  Rng rng(3);
  const std::size_t columns = chip.profile().geometry.columns;
  const auto layout_rows =
      static_cast<dram::RowAddr>(chip.layout().rows());

  // 1. Fill one subarray with "secrets".
  BitVec secret(columns);
  std::printf("storing secrets in subarray 0 (%u rows)...\n", layout_rows);
  for (dram::RowAddr r = 0; r < layout_rows; ++r) {
    secret.randomize(rng);
    engine.write_row(0, r, secret);
  }

  // 2. Wipe: write one burn pattern, then Multi-RowCopy it across the
  //    subarray in 32-row groups.
  BitVec burn(columns);
  burn.fill_byte(0x00);
  std::size_t wiped_ops = 0;
  std::vector<bool> wiped(layout_rows, false);
  // Activation groups are cartesian products of pre-decoder digits, not
  // contiguous ranges: greedily seed a 32-row group from the first row
  // that still holds secrets until the subarray is covered.
  for (dram::RowAddr seed = 0; seed < layout_rows; ++seed) {
    if (wiped[seed]) continue;
    const pud::RowGroup group =
        pud::make_group(chip.layout(), seed,
                        chip.layout().partner_for_group_size(seed, 32));
    engine.write_row(0, group.row_first, burn);
    engine.multi_row_copy(0, 0, group);
    ++wiped_ops;
    for (dram::RowAddr r : group.rows) wiped[r] = true;
  }

  // 3. Verify nothing readable remains.
  std::size_t leaked_bits = 0;
  for (dram::RowAddr r = 0; r < layout_rows; ++r)
    leaked_bits += engine.read_row(0, r).hamming_distance(burn);
  std::printf("wiped all %u rows with %zu Multi-RowCopy operations; "
              "%zu residual bit(s) differ from the burn pattern\n",
              layout_rows, wiped_ops, leaked_bits);

  // 4. The Fig 17 whole-bank cost comparison.
  std::printf("\nwhole-bank destruction cost (Fig 17):\n");
  Table table({"method", "operations", "bank_wipe_ms", "speedup"});
  for (const auto& c : compare_destruction_methods(chip.profile().geometry,
                                                   chip.profile().timings)) {
    table.add_row({c.label, std::to_string(c.cost.operations),
                   Table::num(c.cost.total_ns / 1e6, 3),
                   Table::num(c.speedup_vs_rowclone, 2) + "x"});
  }
  std::printf("%s", table.to_text().c_str());
  return 0;
}
