#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace simra {

class Rng;

/// Fixed-length vector of bits with word-parallel bulk operations.
///
/// Used to represent DRAM row contents (one bit per cell on a wordline) and
/// the data operands of PUD operations. Bit i of word w holds cell index
/// 64*w + i.
class BitVec {
 public:
  BitVec() = default;
  explicit BitVec(std::size_t size, bool value = false);

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  bool get(std::size_t i) const;
  void set(std::size_t i, bool value);
  void flip(std::size_t i);

  void fill(bool value);
  /// Fills with a repeating byte pattern, e.g. 0xAA -> 10101010...
  void fill_byte(std::uint8_t byte);
  /// Fills with uniformly random bits.
  void randomize(Rng& rng);

  /// Number of set bits.
  std::size_t popcount() const noexcept;
  /// Number of positions where *this and other differ (sizes must match).
  std::size_t hamming_distance(const BitVec& other) const;
  /// Number of positions where *this and other agree (sizes must match).
  std::size_t matches(const BitVec& other) const;

  BitVec operator~() const;
  BitVec& operator&=(const BitVec& other);
  BitVec& operator|=(const BitVec& other);
  BitVec& operator^=(const BitVec& other);

  friend BitVec operator&(BitVec a, const BitVec& b) { return a &= b; }
  friend BitVec operator|(BitVec a, const BitVec& b) { return a |= b; }
  friend BitVec operator^(BitVec a, const BitVec& b) { return a ^= b; }
  bool operator==(const BitVec& other) const;

  /// Bitwise majority across an odd number of equally sized vectors.
  static BitVec majority(const std::vector<const BitVec*>& inputs);

  /// Copies `len` bits starting at `pos` into a new vector.
  BitVec slice(std::size_t pos, std::size_t len) const;
  /// Overwrites bits [pos, pos + src.size()) with `src`.
  void assign_range(std::size_t pos, const BitVec& src);
  /// Overwrites bits of *this with `src` where `mask` is set (sizes equal).
  void assign_masked(const BitVec& src, const BitVec& mask);

  /// First `n` bits rendered as '0'/'1' (debugging aid).
  std::string to_string(std::size_t n = 64) const;

  const std::vector<std::uint64_t>& words() const noexcept { return words_; }

  /// Bits per storage word; bit i of word w holds cell index word_bits*w + i.
  static constexpr std::size_t word_bits() noexcept { return 64; }
  /// Number of storage words (ceil(size / 64)).
  std::size_t word_count() const noexcept { return words_.size(); }
  /// Storage word `wi` (bits [64*wi, 64*wi + 64)).
  std::uint64_t word(std::size_t wi) const;
  /// Overwrites storage word `wi`; bits beyond size() are dropped. The
  /// word-parallel write path for kernels that pack 64 predicate results
  /// at a time.
  void set_word(std::size_t wi, std::uint64_t value);
  /// Sets bits [pos, pos + len) to `value`, a word at a time.
  void set_range(std::size_t pos, std::size_t len, bool value);

 private:
  void check_index(std::size_t i) const;
  void check_same_size(const BitVec& other) const;
  void clear_trailing() noexcept;

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace simra
