#pragma once

#include <span>
#include <vector>

#include "pud/engine.hpp"

namespace simra::pud {

/// Bank-level parallel PUD execution.
///
/// Banks are independent state machines behind one command bus, so the
/// long analog phases of an APA (charge restore, precharge) in one bank
/// can overlap the command-issue phases of the others — the PiDRAM-style
/// throughput lever the paper's case studies assume when scaling to whole
/// modules. The pipeline offsets each bank's ACT->PRE->ACT by one command
/// slot more than the APA span, keeping every per-bank timing delta
/// exact (the device only cares about *its own* command distances).
class BulkEngine {
 public:
  explicit BulkEngine(Engine* engine);

  struct BulkResult {
    /// Row buffer of each bank after its operation, in input order.
    std::vector<BitVec> results;
    double duration_ns = 0.0;
    /// Equivalent serial duration (one op at a time), for speedup checks.
    double serial_duration_ns = 0.0;

    double speedup() const {
      return duration_ns > 0.0 ? serial_duration_ns / duration_ns : 0.0;
    }
  };

  /// Runs the same MAJX operation on every bank in one pipelined command
  /// program. Operand rows must already be initialized per bank (use
  /// stage_majx_operands). The same subarray-local group is used in every
  /// bank.
  BulkResult majx_pipelined(std::span<const dram::BankId> banks,
                            dram::SubarrayId sa, const RowGroup& group,
                            const MajxConfig& config);

  /// Writes the MAJX operand layout (replicas + neutral rows) into every
  /// bank at nominal timings.
  void stage_majx_operands(std::span<const dram::BankId> banks,
                           dram::SubarrayId sa, const RowGroup& group,
                           const MajxConfig& config);

  /// Runs Multi-RowCopy on every bank in one pipelined program (sources
  /// must be initialized beforehand).
  BulkResult multi_row_copy_pipelined(
      std::span<const dram::BankId> banks, dram::SubarrayId sa,
      const RowGroup& group,
      ApaTimings timings = ApaTimings::best_for_multi_row_copy());

 private:
  BulkResult run_pipelined(std::span<const dram::BankId> banks,
                           dram::SubarrayId sa, const RowGroup& group,
                           ApaTimings timings, bool read_buffers);

  Engine* engine_;
};

}  // namespace simra::pud
