#pragma once

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "charz/figure.hpp"
#include "charz/plan.hpp"
#include "charz/runner.hpp"
#include "common/env.hpp"
#include "common/prof.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"

namespace simra::bench_common {

/// Identity of the plan the environment selects: "paper" (SIMRA_FULL=1),
/// "fleet" (SIMRA_FLEET=1, quick depth at the paper's module census), or
/// "quick". Keys every harness-JSON entry, so measurements of different
/// plans never replace each other.
inline std::string plan_label() {
  if (full_scale_run()) return "paper";
  if (env_flag("SIMRA_FLEET")) return "fleet";
  return "quick";
}

/// Prints the standard bench banner: which plan is in use, how to run
/// the paper-scale version, and the harness thread count. Also stamps the
/// run manifest with the plan identity (plan/seed/instances/trials — not
/// the thread count, which is scheduling-only and must not perturb
/// deterministic artifacts).
inline charz::Plan announced_plan(const std::string& what) {
  const charz::Plan plan = charz::Plan::from_env();
  obs::set_manifest_field("bench", what);
  obs::set_manifest_field("plan", plan_label());
  obs::set_manifest_field("seed", std::to_string(plan.seed));
  obs::set_manifest_field("instances", std::to_string(plan.instance_count()));
  obs::set_manifest_field("trials", std::to_string(plan.trials));
  std::cout << "=== " << what << " ===\n";
  const std::string label = plan_label();
  std::cout << (label == "paper" ? "plan: paper-scale (SIMRA_FULL=1)"
                : label == "fleet"
                    ? "plan: paper-fleet (SIMRA_FLEET=1 — quick depth, "
                      "paper module census)"
                    : "plan: quick (SIMRA_FULL=1 for paper scale, "
                      "SIMRA_FLEET=1 for the paper-fleet census)")
            << " — " << plan.instance_count()
            << " (chip, bank, subarray) instances, " << plan.groups_per_size
            << " row groups per size, " << plan.trials << " trials, "
            << charz::harness_threads()
            << " harness threads (SIMRA_THREADS)\n\n";
  return plan;
}

/// Kebab-case slug of a figure title for CSV file names.
inline std::string title_slug(const std::string& title) {
  std::string slug;
  for (char c : title) {
    if (std::isalnum(static_cast<unsigned char>(c)))
      slug.push_back(static_cast<char>(std::tolower(c)));
    else if (!slug.empty() && slug.back() != '-')
      slug.push_back('-');
  }
  while (!slug.empty() && slug.back() == '-') slug.pop_back();
  return slug;
}

/// Prints the figure table plus its coverage annotation; when
/// SIMRA_CSV_DIR is set, also writes the series as CSV there (for
/// plotting scripts).
inline void print_figure(const charz::FigureData& figure) {
  std::cout << figure.title << "\n" << figure.to_table().to_text();
  if (figure.coverage.chips_attempted > 0)
    std::cout << "(" << figure.coverage.summary() << ")\n";
  std::cout << "\n";
  if (const char* dir = std::getenv("SIMRA_CSV_DIR")) {
    const std::string path =
        std::string(dir) + "/" + title_slug(figure.title) + ".csv";
    write_file(path, figure.to_table().to_csv());
    std::cout << "(csv written to " << path << ")\n";
  }
}

/// One paper-reported reference value, printed next to our measurement.
inline void compare(const std::string& label, double paper_pct,
                    double measured_fraction) {
  std::cout << label << ": paper " << Table::num(paper_pct, 2)
            << "% — measured " << Table::num(measured_fraction * 100.0, 2)
            << "%\n";
}

/// One timed figure generation, as recorded in BENCH_harness.json.
struct HarnessRecord {
  std::string figure;
  double seconds = 0.0;
  unsigned threads = 1;
  std::size_t instances = 0;
  std::string plan = "quick";
  /// Pre-optimization reference entries carry baseline=true; the marker
  /// is part of the replacement key, so re-measuring never overwrites the
  /// baseline a speedup claim is made against.
  bool baseline = false;
  /// Sweep coverage (resilience accounting); zero chips for analytic
  /// figures that never ran a sweep.
  std::size_t chips_attempted = 0;
  std::size_t chips_succeeded = 0;
  std::size_t chips_quarantined = 0;
  std::uint64_t retries = 0;

  double instances_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(instances) / seconds : 0.0;
  }
};

/// One program's slot accounting before/after the verify v2 optimizer
/// (dead-command elimination + rule-driven slot compaction), as recorded
/// in the harness JSON's "program_opt" section. `slots_*` are extent
/// slots (bus occupancy window, paper Limitation 2); the validator
/// (tools/check_program_opt.py) requires at least one entry with
/// slots_after < slots_before.
struct ProgramOptRecord {
  std::string program;
  std::size_t commands_before = 0;
  std::size_t commands_after = 0;
  std::uint64_t slots_before = 0;
  std::uint64_t slots_after = 0;

  double slots_saved_pct() const {
    return slots_before > 0
               ? 100.0 *
                     static_cast<double>(slots_before - slots_after) /
                     static_cast<double>(slots_before)
               : 0.0;
  }
};

/// One kernel's scalar-vs-AVX2 timing (bench_kernels --simd-report).
struct SimdRecord {
  std::string kernel;
  double scalar_us = 0.0;
  double avx2_us = 0.0;

  double speedup() const { return avx2_us > 0.0 ? scalar_us / avx2_us : 0.0; }
};

/// Path the harness perf trajectory is written to: SIMRA_BENCH_JSON when
/// set, BENCH_harness.json in the working directory otherwise.
inline std::string harness_json_path() {
  const char* path = std::getenv("SIMRA_BENCH_JSON");
  return path != nullptr ? std::string(path) : std::string("BENCH_harness.json");
}

/// Collects per-figure wall-clock records and persists them to the
/// harness JSON after every measurement. Entries written by earlier bench
/// binaries are kept, so one file accumulates the whole suite's perf
/// trajectory; re-measuring a (figure, threads, plan) point replaces its
/// previous entry.
class HarnessReport {
 public:
  static HarnessReport& global() {
    static HarnessReport report;
    return report;
  }

  void record(const std::string& figure, double seconds, std::size_t instances,
              const charz::Coverage* coverage = nullptr) {
    HarnessRecord rec;
    rec.figure = figure;
    rec.seconds = seconds;
    rec.threads = charz::harness_threads();
    rec.instances = instances;
    rec.plan = plan_label();
    if (coverage != nullptr) {
      rec.chips_attempted = coverage->chips_attempted;
      rec.chips_succeeded = coverage->chips_succeeded;
      rec.chips_quarantined = coverage->chips_quarantined;
      rec.retries = coverage->retries;
    }
    records_.push_back(rec);
    write();
    std::cout << "[harness] " << figure << ": " << Table::num(seconds, 3)
              << " s on " << rec.threads << " thread"
              << (rec.threads == 1 ? "" : "s") << ", "
              << Table::num(rec.instances_per_sec(), 2)
              << " instances/s (recorded in " << harness_json_path() << ")\n";
  }

  /// Records the process-wide per-kernel wall-clock totals (simra::prof)
  /// accumulated so far, replacing this (plan, threads) point's previous
  /// kernel entries, plus the gauges/histograms of the obs metrics
  /// registry (the "metrics" section). Call once, after the figure sweeps.
  void record_kernels() {
    kernels_ = prof::snapshot();
    std::erase_if(kernels_,
                  [](const prof::KernelStats& k) { return k.calls == 0; });
    // Event counters published by the resilient harness (retry/quarantine
    // accounting) go to their own JSON section: they count occurrences,
    // not wall-clock time.
    resilience_.clear();
    for (const auto& k : kernels_)
      if (k.name.rfind("resilience/", 0) == 0) resilience_.push_back(k);
    std::erase_if(kernels_, [](const prof::KernelStats& k) {
      return k.name.rfind("resilience/", 0) == 0;
    });
    gauges_ = obs::MetricsRegistry::instance().gauges_snapshot();
    histograms_ = obs::MetricsRegistry::instance().histograms_snapshot();
    std::erase_if(histograms_,
                  [](const obs::HistogramStats& h) { return h.count == 0; });
    if (kernels_.empty() && resilience_.empty() && gauges_.empty() &&
        histograms_.empty())
      return;
    write();
    if (!kernels_.empty()) {
      std::cout << "[harness] kernel timings (" << harness_json_path()
                << "):\n";
      for (const auto& k : kernels_)
        std::cout << "  " << k.name << ": " << k.calls << " calls, "
                  << Table::num(k.seconds, 3) << " s total, "
                  << Table::num(k.micros_per_call(), 2) << " us/call\n";
    }
    if (!resilience_.empty()) {
      std::cout << "[harness] resilience counters (" << harness_json_path()
                << "):\n";
      for (const auto& k : resilience_)
        std::cout << "  " << k.name << ": " << k.calls << "\n";
    }
    if (!gauges_.empty() || !histograms_.empty()) {
      std::cout << "[harness] metrics (" << harness_json_path() << "):\n";
      for (const auto& g : gauges_)
        std::cout << "  " << g.name << ": " << Table::num(g.value, 3) << "\n";
      for (const auto& h : histograms_)
        std::cout << "  " << h.name << ": " << h.count << " observations\n";
    }
  }

  /// Records per-program optimizer accounting (the "program_opt"
  /// section). Replaces this (program, plan) point's previous entry.
  void record_program_opt(const std::vector<ProgramOptRecord>& records) {
    program_opt_ = records;
    if (program_opt_.empty()) return;
    write();
    std::cout << "[harness] program optimization (" << harness_json_path()
              << "):\n";
    for (const auto& p : program_opt_)
      std::cout << "  " << p.program << ": " << p.commands_before << " -> "
                << p.commands_after << " commands, " << p.slots_before
                << " -> " << p.slots_after << " slots ("
                << Table::num(p.slots_saved_pct(), 1) << "% saved)\n";
  }

  /// Records scalar-vs-AVX2 per-kernel timings (the "simd" section).
  /// SIMD dispatch is host-capability dependent, so these entries carry
  /// no plan key — only the thread count the report ran at.
  void record_simd(const std::vector<SimdRecord>& records) {
    simd_ = records;
    if (simd_.empty()) return;
    write();
    std::cout << "[harness] simd speedups (" << harness_json_path() << "):\n";
    for (const auto& s : simd_)
      std::cout << "  " << s.kernel << ": scalar "
                << Table::num(s.scalar_us, 3) << " us, avx2 "
                << Table::num(s.avx2_us, 3) << " us — "
                << Table::num(s.speedup(), 2) << "x\n";
  }

 private:
  static std::string entry_json(const HarnessRecord& r) {
    std::ostringstream os;
    os << "    {\"figure\": \"" << r.figure << "\", \"plan\": \"" << r.plan
       << "\", \"threads\": " << r.threads << ", \"baseline\": "
       << (r.baseline ? "true" : "false") << ", \"seconds\": " << std::fixed
       << std::setprecision(4) << r.seconds << ", \"instances\": "
       << r.instances << ", \"instances_per_sec\": " << std::setprecision(3)
       << r.instances_per_sec() << ", \"chips_attempted\": "
       << r.chips_attempted << ", \"chips_succeeded\": " << r.chips_succeeded
       << ", \"chips_quarantined\": " << r.chips_quarantined
       << ", \"retries\": " << r.retries << "}";
    return os.str();
  }

  std::string kernel_json(const prof::KernelStats& k) const {
    std::ostringstream os;
    os << "    {\"kernel\": \"" << k.name << "\", \"plan\": \"" << plan_label()
       << "\", \"threads\": " << charz::harness_threads()
       << ", \"calls\": " << k.calls << ", \"seconds\": " << std::fixed
       << std::setprecision(4) << k.seconds << ", \"us_per_call\": "
       << std::setprecision(3) << k.micros_per_call() << "}";
    return os.str();
  }

  std::string resilience_json(const prof::KernelStats& k) const {
    std::ostringstream os;
    os << "    {\"counter\": \"" << k.name << "\", \"plan\": \""
       << plan_label() << "\", \"threads\": " << charz::harness_threads()
       << ", \"count\": " << k.calls << "}";
    return os.str();
  }

  std::string program_opt_json(const ProgramOptRecord& p) const {
    std::ostringstream os;
    os << "    {\"program\": \"" << p.program << "\", \"plan\": \""
       << plan_label() << "\", \"commands_before\": " << p.commands_before
       << ", \"commands_after\": " << p.commands_after
       << ", \"slots_before\": " << p.slots_before
       << ", \"slots_after\": " << p.slots_after << ", \"slots_saved_pct\": "
       << std::fixed << std::setprecision(2) << p.slots_saved_pct() << "}";
    return os.str();
  }

  std::string simd_json(const SimdRecord& s) const {
    std::ostringstream os;
    os << "    {\"simd_kernel\": \"" << s.kernel
       << "\", \"threads\": " << charz::harness_threads()
       << ", \"scalar_us\": " << std::fixed << std::setprecision(3)
       << s.scalar_us << ", \"avx2_us\": " << s.avx2_us
       << ", \"speedup\": " << std::setprecision(2) << s.speedup() << "}";
    return os.str();
  }

  std::string metric_prefix(const std::string& name) const {
    std::ostringstream os;
    os << "    {\"metric\": \"" << name << "\", \"plan\": \"" << plan_label()
       << "\", \"threads\": " << charz::harness_threads();
    return os.str();
  }

  std::string gauge_json(const obs::GaugeStats& g) const {
    std::ostringstream os;
    os << metric_prefix(g.name) << ", \"kind\": \"gauge\", \"value\": "
       << std::fixed << std::setprecision(4) << g.value << "}";
    return os.str();
  }

  std::string histogram_json(const obs::HistogramStats& h) const {
    std::ostringstream os;
    os << metric_prefix(h.name) << ", \"kind\": \"histogram\", \"count\": "
       << h.count << ", \"sum\": " << std::fixed << std::setprecision(4)
       << h.sum << ", \"bounds\": [";
    for (std::size_t i = 0; i < h.bounds.size(); ++i)
      os << (i != 0 ? ", " : "") << std::setprecision(4) << h.bounds[i];
    os << "], \"counts\": [";
    for (std::size_t i = 0; i < h.counts.size(); ++i)
      os << (i != 0 ? ", " : "") << h.counts[i];
    os << "]}";
    return os.str();
  }

  /// Replacement key for an entry line: the prefix before the first
  /// measured field ("figure"/"plan"/"threads"/"baseline" for figures,
  /// "kernel"/"plan"/"threads" for kernels, "counter"/"plan"/"threads"
  /// for resilience counters, "metric"/"plan"/"threads" for metrics,
  /// "simd_kernel"/"threads" for simd timings, "program"/"plan" for
  /// optimizer accounting). Cut at whichever marker appears first —
  /// figure entries lead with "seconds", kernel entries with "calls",
  /// resilience entries with "count", metric entries with "kind", simd
  /// entries with "scalar_us", program_opt entries with
  /// "commands_before".
  static std::string entry_key(const std::string& line) {
    auto cut = std::string::npos;
    for (const char* marker :
         {", \"seconds\":", ", \"calls\":", ", \"count\":", ", \"kind\":",
          ", \"scalar_us\":", ", \"commands_before\":"}) {
      const auto pos = line.find(marker);
      if (pos != std::string::npos) cut = std::min(cut, pos);
    }
    return cut == std::string::npos ? line : line.substr(0, cut);
  }

  void write() const {
    // Keep entries from other runs that this run has not re-measured.
    std::vector<std::string> figure_lines;
    std::vector<std::string> kernel_lines;
    std::vector<std::string> resilience_lines;
    std::vector<std::string> metric_lines;
    std::vector<std::string> simd_lines;
    std::vector<std::string> program_opt_lines;
    std::ifstream in(harness_json_path());
    for (std::string line; std::getline(in, line);) {
      const bool is_figure = line.find("{\"figure\": \"") != std::string::npos;
      const bool is_kernel = line.find("{\"kernel\": \"") != std::string::npos;
      const bool is_counter =
          line.find("{\"counter\": \"") != std::string::npos;
      const bool is_metric = line.find("{\"metric\": \"") != std::string::npos;
      const bool is_simd =
          line.find("{\"simd_kernel\": \"") != std::string::npos;
      const bool is_program_opt =
          line.find("{\"program\": \"") != std::string::npos;
      if (!is_figure && !is_kernel && !is_counter && !is_metric && !is_simd &&
          !is_program_opt)
        continue;
      if (line.back() == ',') line.pop_back();
      bool replaced = false;
      for (const HarnessRecord& r : records_)
        if (entry_key(line) == entry_key(entry_json(r))) replaced = true;
      for (const auto& k : kernels_)
        if (entry_key(line) == entry_key(kernel_json(k))) replaced = true;
      for (const auto& k : resilience_)
        if (entry_key(line) == entry_key(resilience_json(k))) replaced = true;
      for (const auto& g : gauges_)
        if (entry_key(line) == entry_key(gauge_json(g))) replaced = true;
      for (const auto& h : histograms_)
        if (entry_key(line) == entry_key(histogram_json(h))) replaced = true;
      for (const auto& s : simd_)
        if (entry_key(line) == entry_key(simd_json(s))) replaced = true;
      for (const auto& p : program_opt_)
        if (entry_key(line) == entry_key(program_opt_json(p))) replaced = true;
      if (replaced) continue;
      (is_figure        ? figure_lines
       : is_kernel      ? kernel_lines
       : is_metric      ? metric_lines
       : is_simd        ? simd_lines
       : is_program_opt ? program_opt_lines
                        : resilience_lines)
          .push_back(line);
    }
    for (const HarnessRecord& r : records_)
      figure_lines.push_back(entry_json(r));
    for (const auto& k : kernels_) kernel_lines.push_back(kernel_json(k));
    for (const auto& k : resilience_)
      resilience_lines.push_back(resilience_json(k));
    for (const auto& g : gauges_) metric_lines.push_back(gauge_json(g));
    for (const auto& h : histograms_)
      metric_lines.push_back(histogram_json(h));
    for (const auto& s : simd_) simd_lines.push_back(simd_json(s));
    for (const auto& p : program_opt_)
      program_opt_lines.push_back(program_opt_json(p));

    const auto append_array = [](std::string& out,
                                 const std::vector<std::string>& lines) {
      for (std::size_t i = 0; i < lines.size(); ++i) {
        out += lines[i];
        if (i + 1 < lines.size()) out += ",";
        out += "\n";
      }
    };
    std::string out = "{\n  \"schema\": 7,\n  \"figures\": [\n";
    append_array(out, figure_lines);
    out += "  ],\n  \"kernels\": [\n";
    append_array(out, kernel_lines);
    out += "  ],\n  \"resilience\": [\n";
    append_array(out, resilience_lines);
    out += "  ],\n  \"metrics\": [\n";
    append_array(out, metric_lines);
    out += "  ],\n  \"simd\": [\n";
    append_array(out, simd_lines);
    out += "  ],\n  \"program_opt\": [\n";
    append_array(out, program_opt_lines);
    out += "  ]\n}\n";
    write_file(harness_json_path(), out);
  }

  std::vector<HarnessRecord> records_;
  std::vector<prof::KernelStats> kernels_;
  std::vector<prof::KernelStats> resilience_;
  std::vector<obs::GaugeStats> gauges_;
  std::vector<obs::HistogramStats> histograms_;
  std::vector<SimdRecord> simd_;
  std::vector<ProgramOptRecord> program_opt_;
};

/// Runs `fn(plan)`, records its wall-clock time, thread count, instance
/// throughput, and — when the result carries one — sweep coverage in the
/// harness report, and returns its result.
template <typename Fn>
auto timed_figure(const charz::Plan& plan, const std::string& name, Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  auto result = fn(plan);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const charz::Coverage* coverage = nullptr;
  if constexpr (requires { result.coverage; }) coverage = &result.coverage;
  HarnessReport::global().record(name, seconds, plan.instance_count(),
                                 coverage);
  return result;
}

}  // namespace simra::bench_common
