#include "charz/limitations.hpp"

#include <algorithm>

#include "charz/figures.hpp"
#include "charz/runner.hpp"
#include "charz/series.hpp"
#include "common/rng.hpp"
#include "pud/patterns.hpp"
#include "pud/success.hpp"

namespace simra::charz {

FigureData limitation1_vendor_support(const Plan& plan) {
  Plan with_samsung = plan;
  with_samsung.modules.push_back({dram::VendorProfile::samsung(), 1});

  const auto sweep = run_instances<SeriesAccumulator>(
      with_samsung, [&plan](Instance& inst, SeriesAccumulator& out) {
        for (std::size_t n : activation_sizes()) {
          pud::MeasureConfig cfg;
          cfg.pattern = dram::DataPattern::kRandom;
          cfg.trials = plan.trials;
          cfg.timings = pud::ApaTimings::best_for_smra();
          for (std::size_t gi = 0; gi < plan.groups_per_size; ++gi) {
            const pud::RowGroup group =
                pud::sample_group(inst.engine.layout(), n, inst.rng);
            out.add({inst.profile.short_name, std::to_string(n)},
                    pud::measure_smra(inst.engine, inst.bank, inst.subarray,
                                      group, cfg, inst.rng));
          }
        }
      });
  return finish_sweep(
      sweep,
      "Limitation 1: SiMRA success by manufacturer (Mfr. S gates violated "
      "timings)",
      {"vendor", "N"});
}

DisturbanceResult limitation3_disturbance(const Plan& plan,
                                          std::size_t trials_per_group,
                                          Coverage* coverage) {
  auto sweep = run_instances<DisturbanceResult>(
      plan, [trials_per_group](Instance& inst, DisturbanceResult& result) {
        pud::Engine& engine = inst.engine;
        const std::size_t columns = engine.chip().profile().geometry.columns;
        const auto rows = static_cast<dram::RowAddr>(engine.layout().rows());

        // Initialize the whole subarray with a known pattern.
        const BitVec init = pud::make_pattern_row(dram::DataPattern::kRandom,
                                                  columns, inst.rng);
        for (dram::RowAddr r = 0; r < rows; ++r)
          engine.write_row(inst.bank, engine.global_of(inst.subarray, r), init);

        const pud::RowGroup group =
            pud::sample_group(engine.layout(), 32, inst.rng);
        for (std::size_t t = 0; t < trials_per_group; ++t) {
          // Exercise all three operations against the same group.
          engine.apa_then_write(inst.bank, inst.subarray, group, ~init,
                                pud::ApaTimings::best_for_smra());
          engine.multi_row_copy(inst.bank, inst.subarray, group);
          pud::MajxConfig maj;
          maj.x = 3;
          maj.operands =
              pud::make_pattern_rows(dram::DataPattern::kRandom, columns, 3,
                                     inst.rng);
          (void)engine.majx(inst.bank, inst.subarray, group, maj);
          ++result.trials;
        }

        // Scan every row outside the activated group.
        for (dram::RowAddr r = 0; r < rows; ++r) {
          if (std::binary_search(group.rows.begin(), group.rows.end(), r))
            continue;
          const BitVec readback =
              engine.read_row(inst.bank, engine.global_of(inst.subarray, r));
          result.bitflips_outside_group += readback.hamming_distance(init);
          result.cells_checked += columns;
        }
      });
  if (coverage != nullptr) *coverage = std::move(sweep.coverage);
  return std::move(sweep.result);
}

}  // namespace simra::charz
