#include "casestudy/data_movement.hpp"

#include <stdexcept>

#include "dram/power_model.hpp"
#include "majsynth/cost_model.hpp"
#include "majsynth/synth.hpp"

namespace simra::casestudy {

BulkBitwiseComparison compare_bulk_and(const dram::VendorProfile& profile,
                                       std::size_t operands) {
  if (operands < 2) throw std::invalid_argument("need >= 2 operand rows");
  const auto& t = profile.timings;
  using dram::PowerModel;
  using dram::PowerOp;

  BulkBitwiseComparison out;
  out.operand_rows = operands;
  out.row_bits = profile.geometry.columns;

  // --- Processor path: burst transfers over the data bus. ---
  const double bursts_per_row =
      static_cast<double>(out.row_bits) / 64.0;
  const double row_transfer_ns =
      t.tRCD.value + bursts_per_row * t.tCCD.value + t.tRP.value;
  const double transfers = static_cast<double>(operands) + 1.0;  // k in, 1 out.
  out.cpu_time_ns = transfers * row_transfer_ns;
  out.cpu_energy_pj =
      static_cast<double>(operands) *
          PowerModel::energy_pj(PowerOp::kRead, Nanoseconds{row_transfer_ns}) +
      PowerModel::energy_pj(PowerOp::kWrite, Nanoseconds{row_transfer_ns});

  // --- PUD path: MAJ3 AND tree (operands - 1 gates) in place. ---
  const majsynth::NetworkCost cost =
      majsynth::synth::bitwise_and_network(static_cast<unsigned>(operands), 3)
          .cost();
  const majsynth::OpLatencies ops = majsynth::OpLatencies::from_timings(t);
  double pud_ns = 0.0;
  double pud_pj = 0.0;
  for (const auto& [fanin, count] : cost.maj_by_fanin) {
    const double gate_ns = majsynth::maj_gate_latency_ns(
        fanin, 4, profile.supports_frac, ops);
    pud_ns += static_cast<double>(count) * gate_ns;
    pud_pj += static_cast<double>(count) *
              PowerModel::energy_pj(PowerOp::kManyRowActivation,
                                    Nanoseconds{gate_ns}, 4);
    out.pud_operations += count;
  }
  out.pud_time_ns = pud_ns;
  out.pud_energy_pj = pud_pj;
  return out;
}

}  // namespace simra::casestudy
