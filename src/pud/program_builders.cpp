#include "pud/program_builders.hpp"

#include <stdexcept>

namespace simra::pud::programs {

using bender::CommandKind;
using bender::Program;

dram::RowAddr global_row(dram::SubarrayId sa, std::size_t rows_per_subarray,
                         dram::RowAddr local) {
  return static_cast<dram::RowAddr>(sa) *
             static_cast<dram::RowAddr>(rows_per_subarray) +
         local;
}

Program write_row(const dram::VendorProfile& profile, dram::BankId bank,
                  dram::RowAddr global_row, BitVec data) {
  const auto& t = profile.timings;
  Program p;
  p.set_name("write_row");
  p.act(bank, global_row)
      .delay_at_least(t.tRCD)
      .wr(bank, 0, std::move(data))
      .delay_at_least(t.tWR)
      .pad_after_last(CommandKind::kAct, t.tRAS)
      .pre(bank)
      .delay_at_least(t.tRP);
  return p;
}

Program read_row(const dram::VendorProfile& profile, dram::BankId bank,
                 dram::RowAddr global_row, std::size_t nbits) {
  const auto& t = profile.timings;
  Program p;
  p.set_name("read_row");
  p.act(bank, global_row)
      .delay_at_least(t.tRCD)
      .rd(bank, 0, nbits)
      .delay_at_least(t.tCCD)
      .pad_after_last(CommandKind::kAct, t.tRAS)
      .pre(bank)
      .delay_at_least(t.tRP);
  return p;
}

Program frac(const dram::VendorProfile& profile, dram::BankId bank,
             dram::RowAddr global_row) {
  const auto& t = profile.timings;
  Program p;
  p.set_name("frac").expect(verify::frac_intents(static_cast<int>(bank)));
  // ACT -> PRE long before the sense amplifiers fire: the cells are left
  // half charge-shared at ~VDD/2.
  p.act(bank, global_row)
      .delay(Nanoseconds{1.5})
      .pre(bank)
      .delay_at_least(t.tRP);
  return p;
}

Program rowclone(const dram::VendorProfile& profile, dram::BankId bank,
                 dram::RowAddr src_global, dram::RowAddr dst_global) {
  const auto& t = profile.timings;
  Program p;
  p.set_name("rowclone")
      .expect(verify::rowclone_intents(static_cast<int>(bank)));
  // Full tRAS lets the SA latch the source; t2 = 6 ns de-asserts the
  // source wordline but leaves the bitlines un-precharged -> the second
  // ACT overwrites dst with the SA contents (consecutive activation).
  p.act(bank, src_global)
      .delay_at_least(t.tRAS)
      .pre(bank)
      .delay(Nanoseconds{6.0})
      .act(bank, dst_global)
      .delay_at_least(t.tRAS)
      .pre(bank)
      .delay_at_least(t.tRP);
  return p;
}

Program apa(const dram::VendorProfile& profile, dram::BankId bank,
            dram::RowAddr rf_global, dram::RowAddr rs_global,
            ApaTimings timings, bool read_buffer) {
  const auto& t = profile.timings;
  const std::size_t columns = profile.geometry.columns;
  Program p;
  p.set_name("apa").expect(verify::apa_intents(static_cast<int>(bank)));
  p.act(bank, rf_global)
      .delay(timings.t1)
      .pre(bank)
      .delay(timings.t2)
      .act(bank, rs_global)
      .delay_at_least(t.tRAS);
  if (read_buffer) p.rd(bank, 0, columns).delay_at_least(t.tCCD);
  p.pre(bank).delay_at_least(t.tRP);
  return p;
}

Program apa_then_write(const dram::VendorProfile& profile, dram::BankId bank,
                       dram::RowAddr rf_global, dram::RowAddr rs_global,
                       BitVec data, ApaTimings timings) {
  const auto& t = profile.timings;
  Program p;
  p.set_name("apa_then_write")
      .expect(verify::apa_intents(static_cast<int>(bank)));
  p.act(bank, rf_global)
      .delay(timings.t1)
      .pre(bank)
      .delay(timings.t2)
      .act(bank, rs_global)
      .delay_at_least(t.tRCD)
      .wr(bank, 0, std::move(data))
      .delay_at_least(t.tWR)
      .pad_after_last(CommandKind::kAct, t.tRAS)
      .pre(bank)
      .delay_at_least(t.tRP);
  return p;
}

std::vector<Program> majx_staging(const dram::VendorProfile& profile,
                                  std::size_t rows_per_subarray,
                                  dram::BankId bank, dram::SubarrayId sa,
                                  const RowGroup& group,
                                  std::span<const BitVec> operands) {
  const auto x = static_cast<unsigned>(operands.size());
  if (x < 3 || x % 2 == 0)
    throw std::invalid_argument("MAJX needs an odd operand count >= 3");
  if (group.size() < x)
    throw std::invalid_argument("group smaller than the operand count");

  const std::size_t replicas = group.size() / x;
  const std::size_t data_rows = replicas * x;

  // Assignment order: R_F first (it must carry data — a Frac'd R_F would
  // be re-sensed and destroyed by the first ACT), then the rest of the
  // group in address order.
  std::vector<dram::RowAddr> order;
  order.reserve(group.size());
  order.push_back(group.row_first);
  for (dram::RowAddr r : group.rows)
    if (r != group.row_first) order.push_back(r);

  std::vector<Program> staged;
  staged.reserve(order.size());
  bool neutral_toggle = false;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const dram::RowAddr global = global_row(sa, rows_per_subarray, order[i]);
    if (i < data_rows) {
      staged.push_back(write_row(profile, bank, global, operands[i % x]));
    } else if (profile.supports_frac) {
      // True neutral rows at VDD/2.
      staged.push_back(frac(profile, bank, global));
    } else {
      // Frac-less vendors (Mfr. M, fn. 5): emulate neutrality with
      // alternating all-0s/all-1s rows. An odd leftover row biases the
      // bitline by a full cell — the structural reason MAJ9 fails there.
      BitVec fill(profile.geometry.columns, neutral_toggle);
      neutral_toggle = !neutral_toggle;
      staged.push_back(write_row(profile, bank, global, std::move(fill)));
    }
  }
  return staged;
}

}  // namespace simra::pud::programs
