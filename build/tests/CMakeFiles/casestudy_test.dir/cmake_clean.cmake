file(REMOVE_RECURSE
  "CMakeFiles/casestudy_test.dir/casestudy/casestudy_test.cpp.o"
  "CMakeFiles/casestudy_test.dir/casestudy/casestudy_test.cpp.o.d"
  "CMakeFiles/casestudy_test.dir/casestudy/data_movement_test.cpp.o"
  "CMakeFiles/casestudy_test.dir/casestudy/data_movement_test.cpp.o.d"
  "casestudy_test"
  "casestudy_test.pdb"
  "casestudy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casestudy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
