// A miniature version of the paper's entire characterization methodology
// against one module: reverse engineer the subarray geometry with
// RowClone (§3.1), then measure SiMRA, MAJX, and Multi-RowCopy success
// rates (§3.2-3.4) — all through the testbed command interface.
#include <cstdio>

#include "bender/testbed.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "pud/engine.hpp"
#include "pud/subarray_mapper.hpp"
#include "pud/success.hpp"

int main() {
  using namespace simra;

  auto module_ptr =
      std::make_unique<dram::Module>(dram::VendorProfile::hynix_m(), 777,
                                     /*chip_count=*/1);
  bender::Testbed testbed(std::move(module_ptr));
  testbed.temperature().set_target(Celsius{50.0});
  testbed.vpp_supply().set_vpp(Volts{2.5});

  dram::Chip& chip = testbed.module().chip(0);
  pud::Engine engine(&chip);
  Rng rng(42);

  std::printf("module under test: %s %s (%s, die %c)\n",
              chip.profile().module_vendor.c_str(),
              chip.profile().module_identifier.c_str(),
              chip.profile().density.c_str(), chip.profile().die_revision);

  // 1. Find the subarray size via RowClone (the device is a black box to
  //    the mapper: it only issues commands).
  pud::SubarrayMapper mapper(&engine, &rng);
  const std::size_t subarray_rows = mapper.infer_subarray_size(0);
  std::printf("reverse-engineered subarray size: %zu rows\n\n", subarray_rows);

  // 2. Success-rate spot checks at the best timings.
  Table table({"operation", "config", "success"});
  auto measure_n = [&](std::size_t n) {
    pud::MeasureConfig cfg;
    cfg.timings = pud::ApaTimings::best_for_smra();
    const auto group = pud::sample_group(chip.layout(), n, rng);
    return pud::measure_smra(engine, 0, 1, group, cfg, rng);
  };
  for (std::size_t n : {2u, 8u, 32u})
    table.add_row({"SiMRA", std::to_string(n) + "-row",
                   Table::pct(measure_n(n))});

  for (unsigned x : {3u, 5u, 7u, 9u}) {
    pud::MeasureConfig cfg;
    cfg.timings = pud::ApaTimings::best_for_majx();
    const auto group = pud::sample_group(chip.layout(), 32, rng);
    table.add_row({"MAJ" + std::to_string(x), "32-row",
                   Table::pct(pud::measure_majx(engine, 0, 1, group, x, cfg,
                                                rng))});
  }
  for (std::size_t dests : {7u, 31u}) {
    pud::MeasureConfig cfg;
    cfg.timings = pud::ApaTimings::best_for_multi_row_copy();
    const auto group = pud::sample_group(chip.layout(), dests + 1, rng);
    table.add_row({"Multi-RowCopy", std::to_string(dests) + " dests",
                   Table::pct(pud::measure_mrc(engine, 0, 1, group, cfg,
                                               rng))});
  }
  std::printf("%s", table.to_text().c_str());
  std::printf("\n(averages over 120 chips are produced by the bench "
              "binaries; see bench/)\n");
  return 0;
}
