// Reproduces Fig 12: Multi-RowCopy under (a) temperature and (b) VPP
// scaling (Obs. 17/18).
#include "bench_common.hpp"
#include "charz/figures.hpp"

int main() {
  using namespace simra;
  const charz::Plan plan = bench_common::announced_plan(
      "Fig 12: Multi-RowCopy success rate vs temperature and VPP");

  const charz::FigureData temp = bench_common::timed_figure(
      plan, "fig12a_mrc_temperature", charz::fig12a_mrc_temperature);
  bench_common::print_figure(temp);
  const charz::FigureData vpp = bench_common::timed_figure(
      plan, "fig12b_mrc_voltage", charz::fig12b_mrc_voltage);
  bench_common::print_figure(vpp);

  std::cout << "Paper reference points:\n";
  const double d_temp =
      temp.mean_at({"90", "31"}) - temp.mean_at({"50", "31"});
  std::cout << "  31 dests 50->90C (Obs. 17, ~0.04% avg variation): measured "
            << Table::num(d_temp * 100.0, 3) << "%\n";
  const double d_vpp = vpp.mean_at({"2.5", "31"}) - vpp.mean_at({"2.1", "31"});
  std::cout << "  31 dests 2.5->2.1V (Obs. 18, <=1.32% decrease): measured "
            << Table::num(-d_vpp * 100.0, 3) << "% decrease\n";
  return 0;
}
